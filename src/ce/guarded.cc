#include "ce/guarded.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/fault.h"
#include "common/stopwatch.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "query/validate.h"

namespace confcard {

GuardedEstimator::GuardMetrics::GuardMetrics()
    : queries(obs::Metrics().GetCounter("ce.guard.queries")),
      primary_ok(obs::Metrics().GetCounter("ce.guard.primary_ok")),
      sanitized_nan(obs::Metrics().GetCounter("ce.guard.sanitized_nan")),
      sanitized_negative(
          obs::Metrics().GetCounter("ce.guard.sanitized_negative")),
      budget_exceeded(obs::Metrics().GetCounter("ce.guard.budget_exceeded")),
      retries(obs::Metrics().GetCounter("ce.guard.retries")),
      retry_success(obs::Metrics().GetCounter("ce.guard.retry_success")),
      fallback_served(obs::Metrics().GetCounter("ce.guard.fallback_served")),
      invalid_query(obs::Metrics().GetCounter("ce.guard.invalid_query")),
      breaker_trips(obs::Metrics().GetCounter("ce.guard.breaker_trips")),
      breaker_probes(obs::Metrics().GetCounter("ce.guard.breaker_probes")),
      breaker_recoveries(
          obs::Metrics().GetCounter("ce.guard.breaker_recoveries")),
      breaker_open(obs::Metrics().GetGauge("ce.guard.breaker_open")),
      latency_us(obs::Metrics().GetHistogram("ce.guard.latency_us")) {}

GuardedEstimator::GuardMetrics& GuardedEstimator::SharedMetrics() {
  static GuardMetrics* metrics = new GuardMetrics();
  return *metrics;
}

GuardedEstimator::GuardedEstimator(const CardinalityEstimator& primary,
                                   const Table& table, GuardOptions options)
    : primary_(&primary),
      histogram_(std::make_unique<HistogramEstimator>(table)),
      options_(options),
      num_columns_(table.num_columns()),
      metrics_(SharedMetrics()) {}

void GuardedEstimator::AddFallback(const CardinalityEstimator& fallback) {
  fallbacks_.push_back(&fallback);
}

std::string GuardedEstimator::name() const {
  return "guarded(" + primary_->name() + ")";
}

bool GuardedEstimator::Sane(double v) {
  return std::isfinite(v) && v >= 0.0;
}

bool GuardedEstimator::breaker_open() const {
  return forced_open_.load(std::memory_order_acquire) ||
         open_.load(std::memory_order_acquire);
}

void GuardedEstimator::ForceBreaker(bool open) const {
  forced_open_.store(open, std::memory_order_release);
}

bool GuardedEstimator::breaker_forced() const {
  return forced_open_.load(std::memory_order_acquire);
}

bool GuardedEstimator::AllowPrimary(bool* probe) const {
  *probe = false;
  if (forced_open_.load(std::memory_order_acquire)) return false;
  if (options_.breaker_threshold <= 0) return true;
  if (!open_.load(std::memory_order_acquire)) return true;
  // Open: either burn one cooldown tick, claim the probe slot, or (when
  // another thread holds the probe slot) stay on the fallback. Every
  // transition is a CAS so concurrent callers each take exactly one of
  // those actions — the cooldown never goes negative and at most one
  // probe is in flight.
  int c = cooldown_remaining_.load(std::memory_order_relaxed);
  for (;;) {
    if (c > 0) {
      if (cooldown_remaining_.compare_exchange_weak(
              c, c - 1, std::memory_order_acq_rel)) {
        return false;
      }
      continue;  // c reloaded by the failed CAS
    }
    if (c == kProbeInFlight) return false;
    // c == 0: cooldown drained; claim the probe slot.
    if (cooldown_remaining_.compare_exchange_weak(
            c, kProbeInFlight, std::memory_order_acq_rel)) {
      *probe = true;
      return true;
    }
  }
}

void GuardedEstimator::RecordPrimaryOutcome(bool ok, bool was_probe) const {
  if (options_.breaker_threshold <= 0) return;
  if (ok) {
    consecutive_failures_.store(0, std::memory_order_relaxed);
    if (open_.load(std::memory_order_acquire) &&
        open_.exchange(false, std::memory_order_acq_rel)) {
      // A healthy probe closes the breaker (exactly one thread observes
      // the open->closed edge and owns the metrics update).
      cooldown_remaining_.store(0, std::memory_order_release);
      metrics_.breaker_recoveries.Increment();
      metrics_.breaker_open.Set(0.0);
    }
    return;
  }
  if (open_.load(std::memory_order_acquire)) {
    // A failed probe restarts the cooldown; the breaker stays open.
    cooldown_remaining_.store(options_.breaker_cooldown,
                              std::memory_order_release);
    return;
  }
  const int failures =
      consecutive_failures_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (failures >= options_.breaker_threshold) {
    bool expected = false;
    if (open_.compare_exchange_strong(expected, true,
                                      std::memory_order_acq_rel)) {
      cooldown_remaining_.store(options_.breaker_cooldown,
                                std::memory_order_release);
      metrics_.breaker_trips.Increment();
      metrics_.breaker_open.Set(1.0);
    }
  }
  (void)was_probe;
}

bool GuardedEstimator::TryPrimary(const Query& query, double* value) const {
  const int attempts = 1 + std::max(options_.max_retries, 0);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    double v;
    double elapsed_us;
    {
      Stopwatch watch;
      if (attempt == 0) {
        // Attempt 0 runs with the default retry salt so a guarded
        // primary sees exactly the injection decisions the raw model
        // would.
        v = primary_->EstimateCardinality(query);
      } else {
        fault::ScopedRetrySalt salt(static_cast<uint64_t>(attempt));
        v = primary_->EstimateCardinality(query);
      }
      elapsed_us = watch.ElapsedMicros();
    }
    bool ok = Sane(v);
    if (!ok) {
      (std::isnan(v) || std::isinf(v) ? metrics_.sanitized_nan
                                      : metrics_.sanitized_negative)
          .Increment();
    } else if (options_.latency_budget_us > 0.0 &&
               elapsed_us > options_.latency_budget_us) {
      metrics_.budget_exceeded.Increment();
      ok = false;
    }
    if (ok) {
      if (attempt > 0) metrics_.retry_success.Increment();
      *value = v;
      return true;
    }
    if (attempt + 1 < attempts) metrics_.retries.Increment();
  }
  return false;
}

GuardedEstimate GuardedEstimator::ServeFallback(const Query& query) const {
  metrics_.fallback_served.Increment();
  for (size_t i = 0; i < fallbacks_.size(); ++i) {
    const double v = fallbacks_[i]->EstimateCardinality(query);
    if (Sane(v)) return {v, true, static_cast<int>(i) + 1};
  }
  double v = histogram_->EstimateCardinality(query);
  if (!Sane(v)) v = 0.0;  // the AVI estimator is always sane; belt & braces
  return {v, true, static_cast<int>(fallbacks_.size()) + 1};
}

void GuardedEstimator::EmitGuardRecord(const Query& query,
                                       const GuardedEstimate& outcome,
                                       const char* reason,
                                       uint64_t order_key) const {
  obs::EventLog& elog = obs::EventLog::Instance();
  if (!elog.enabled()) return;
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("type").String("guard");
  w.Key("model").String(primary_->name());
  w.Key("reason").String(reason);
  w.Key("qkey").Int(QueryContentKey(query));
  w.Key("value").Number(outcome.value);
  w.Key("degraded").Bool(outcome.degraded);
  w.Key("source").Number(static_cast<double>(outcome.source));
  w.EndObject();
  if (order_key != 0) {
    elog.AppendRecordOrdered(w.TakeString(), order_key);
  } else {
    elog.AppendRecord(w.TakeString());
  }
}

// Everything EstimateGuarded does except the per-query counter bump —
// the batched fast path re-enters here for queries whose batched output
// failed sanitization, and must not double-count them.
GuardedEstimate GuardedEstimator::GuardOne(const Query& query,
                                           uint64_t order_key) const {
  // Detail-only span over the whole ladder (validation, the
  // latency-budgeted primary attempt, retry, fallback): on trace
  // timelines budget-exceeded queries show up as long guard.estimate
  // spans, and the profiler attributes their CPU to this frame.
  std::optional<obs::TraceSpan> guard_span;
  if (obs::DetailSpansEnabled()) guard_span.emplace("guard.estimate");
  if (!ValidateQuery(query, num_columns_).ok()) {
    metrics_.invalid_query.Increment();
    // A malformed query has no meaningful cardinality; quarantine it
    // with the empty-result answer rather than crashing an estimator.
    GuardedEstimate out{0.0, true, -1};
    EmitGuardRecord(query, out, "invalid_query", order_key);
    return out;
  }
  Stopwatch watch;
  bool probe = false;
  if (!AllowPrimary(&probe)) {
    GuardedEstimate out = ServeFallback(query);
    EmitGuardRecord(query, out, "breaker_open", order_key);
    metrics_.latency_us.Record(watch.ElapsedMicros());
    return out;
  }
  if (probe) metrics_.breaker_probes.Increment();
  double value = 0.0;
  if (TryPrimary(query, &value)) {
    RecordPrimaryOutcome(true, probe);
    metrics_.primary_ok.Increment();
    metrics_.latency_us.Record(watch.ElapsedMicros());
    return {value, false, 0};
  }
  RecordPrimaryOutcome(false, probe);
  GuardedEstimate out = ServeFallback(query);
  EmitGuardRecord(query, out, probe ? "probe_failed" : "primary_failed",
                  order_key);
  metrics_.latency_us.Record(watch.ElapsedMicros());
  return out;
}

GuardedEstimate GuardedEstimator::EstimateGuarded(const Query& query) const {
  metrics_.queries.Increment();
  return GuardOne(query);
}

void GuardedEstimator::EstimateBatchGuarded(const Query* queries, size_t n,
                                            GuardedEstimate* out,
                                            uint64_t order_key_base,
                                            GuardBatchScratch* scratch) const {
  if (n == 0) return;
  // Key for query i's guard record: base + i composes with
  // EventLog::OrderKey because batch sizes never approach 2^32. Base 0
  // keeps the automatic per-thread keying.
  const auto key_at = [order_key_base](size_t i) {
    return order_key_base == 0 ? 0 : order_key_base + i;
  };
  metrics_.queries.Increment(n);
  // The primary's batched engine is only safe (and only bit-identical
  // to the per-query guard) when nothing can intervene mid-batch: no
  // injected faults, no per-query budget, breaker closed.
  const bool fast = !fault::Enabled() && options_.latency_budget_us <= 0.0 &&
                    !breaker_open();
  if (!fast) {
    for (size_t i = 0; i < n; ++i) out[i] = GuardOne(queries[i], key_at(i));
    return;
  }

  // A caller-provided scratch keeps capacity across batches, so a
  // steady-state serving loop pays no heap traffic here.
  GuardBatchScratch local;
  GuardBatchScratch& s = scratch != nullptr ? *scratch : local;

  // Validate first: the primary may index columns without checks.
  std::vector<size_t>& valid = s.valid;
  valid.clear();
  valid.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (ValidateQuery(queries[i], num_columns_).ok()) {
      valid.push_back(i);
    } else {
      metrics_.invalid_query.Increment();
      out[i] = {0.0, true, -1};
      EmitGuardRecord(queries[i], out[i], "invalid_query", key_at(i));
    }
  }
  if (valid.empty()) return;

  std::vector<double>& values = s.values;
  values.clear();
  values.resize(valid.size());
  if (valid.size() == n) {
    primary_->EstimateBatch(queries, n, values.data());
  } else {
    // Element-wise assignment into resized (not reconstructed) slots so
    // each Query's predicate vector reuses its capacity batch to batch.
    std::vector<Query>& compacted = s.compacted;
    if (compacted.size() < valid.size()) compacted.resize(valid.size());
    for (size_t k = 0; k < valid.size(); ++k) {
      compacted[k] = queries[valid[k]];
    }
    primary_->EstimateBatch(compacted.data(), valid.size(), values.data());
  }
  for (size_t k = 0; k < valid.size(); ++k) {
    const size_t i = valid[k];
    if (Sane(values[k])) {
      metrics_.primary_ok.Increment();
      out[i] = {values[k], false, 0};
    } else {
      // A real (un-injected) NaN/negative from the primary: run the full
      // per-query ladder, which re-counts the sanitization and falls
      // back.
      out[i] = GuardOne(queries[i], key_at(i));
    }
  }
}

void GuardedEstimator::EstimateFallbackTier(const Query* queries, size_t n,
                                            GuardedEstimate* out,
                                            uint64_t order_key_base) const {
  if (n == 0) return;
  const auto key_at = [order_key_base](size_t i) {
    return order_key_base == 0 ? 0 : order_key_base + i;
  };
  metrics_.queries.Increment(n);
  for (size_t i = 0; i < n; ++i) {
    if (!ValidateQuery(queries[i], num_columns_).ok()) {
      metrics_.invalid_query.Increment();
      out[i] = {0.0, true, -1};
      EmitGuardRecord(queries[i], out[i], "invalid_query", key_at(i));
      continue;
    }
    out[i] = ServeFallback(queries[i]);
    EmitGuardRecord(queries[i], out[i], "drift_fallback", key_at(i));
  }
}

double GuardedEstimator::EstimateCardinality(const Query& query) const {
  return EstimateGuarded(query).value;
}

void GuardedEstimator::EstimateBatch(const Query* queries, size_t n,
                                     double* out) const {
  std::vector<GuardedEstimate> guarded(n);
  EstimateBatchGuarded(queries, n, guarded.data());
  for (size_t i = 0; i < n; ++i) out[i] = guarded[i].value;
}

}  // namespace confcard
