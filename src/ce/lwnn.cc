#include "ce/lwnn.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/fault.h"
#include "common/rng.h"
#include "query/validate.h"
#include "nn/arena.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace confcard {
namespace {

// Floor for selectivity features before taking logs.
constexpr double kSelFloor = 1e-9;

}  // namespace

namespace {
// 'CLW1' — confcard lw-nn archive.
constexpr uint32_t kLwnnMagic = 0x434C5731;
constexpr uint32_t kLwnnVersion = 1;
}  // namespace

LwnnEstimator::LwnnEstimator() : LwnnEstimator(Options{}) {}

LwnnEstimator::LwnnEstimator(Options options) : options_(options) {}

std::vector<float> LwnnEstimator::Features(const Query& query) const {
  CONFCARD_CHECK_MSG(flat_ != nullptr, "lw-nn: not trained");
  std::vector<float> f(flat_->dim() + 2);
  FeaturesInto(query, f.data());
  return f;
}

void LwnnEstimator::FeaturesInto(const Query& query, float* dst) const {
  CONFCARD_CHECK_MSG(flat_ != nullptr, "lw-nn: not trained");
  flat_->FeaturizeInto(query, dst);
  // Heuristic-estimator features: log AVI selectivity and log of the
  // minimum per-predicate selectivity (both in [-inf, 0], scaled).
  double avi = 1.0;
  double min_sel = 1.0;
  for (const Predicate& p : query.predicates) {
    double s = std::max(histogram_->PredicateSelectivity(p), kSelFloor);
    avi *= s;
    min_sel = std::min(min_sel, s);
  }
  avi = std::max(avi, kSelFloor);
  const size_t d = flat_->dim();
  dst[d] = static_cast<float>(std::log(avi) / 21.0);      // ~log(1e-9)
  dst[d + 1] = static_cast<float>(std::log(min_sel) / 21.0);
}

void LwnnEstimator::PublishTrainMeta() const {
  obs::Metrics().SetMeta(
      "config.lw-nn", "epochs=" + std::to_string(options_.epochs) +
                          " hidden1=" + std::to_string(options_.hidden1) +
                          " hidden2=" + std::to_string(options_.hidden2) +
                          " seed=" + std::to_string(options_.seed));
}

void LwnnEstimator::RepublishTrainingTelemetry() const {
  if (net_ == nullptr) return;
  PublishTrainMeta();
  obs::Metrics().GetGauge("nn.lw-nn.last_loss").Set(last_loss_);
}

Status LwnnEstimator::Train(const Table& table, const Workload& workload) {
  if (workload.empty()) {
    return Status::InvalidArgument("lw-nn: empty training workload");
  }
  obs::TraceSpan span("train.lw-nn");
  span.SetAttr("train_queries", static_cast<double>(workload.size()));
  CONFCARD_RETURN_NOT_OK(fault::Check("lwnn.train", options_.seed));
  PublishTrainMeta();
  obs::Metrics().GetCounter("ce.lw-nn.trainings").Increment();
  num_rows_ = static_cast<double>(table.num_rows());
  flat_ = std::make_unique<FlatQueryFeaturizer>(table);
  histogram_ =
      std::make_unique<HistogramEstimator>(table, options_.histogram_buckets);

  const size_t dim = flat_->dim() + 2;
  Rng rng(options_.seed);
  net_ = std::make_unique<nn::Mlp>(
      std::vector<size_t>{dim, options_.hidden1, options_.hidden2, 1}, rng);

  std::vector<std::vector<float>> features;
  std::vector<float> targets;
  features.reserve(workload.size());
  targets.reserve(workload.size());
  for (const LabeledQuery& lq : workload) {
    features.push_back(Features(lq.query));
    targets.push_back(static_cast<float>(std::log(lq.cardinality + 1.0)));
  }

  nn::Adam adam(net_->Parameters(), options_.lr);
  std::vector<size_t> order(features.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const size_t bs = std::max<size_t>(1, options_.batch_size);

  obs::Gauge& loss_gauge = obs::Metrics().GetGauge("nn.lw-nn.last_loss");
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    obs::TraceSpan epoch_span("epoch");
    epoch_span.SetAttr("epoch", static_cast<double>(epoch));
    rng.Shuffle(order);
    double loss_sum = 0.0;
    size_t num_batches = 0;
    for (size_t start = 0; start < order.size(); start += bs) {
      const size_t end = std::min(order.size(), start + bs);
      nn::Tensor batch(end - start, dim);
      std::vector<float> y;
      y.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        std::copy(features[order[i]].begin(), features[order[i]].end(),
                  batch.RowPtr(i - start));
        y.push_back(targets[order[i]]);
      }
      nn::Tensor pred = net_->Forward(batch);
      nn::Tensor grad;
      if (options_.loss.kind == LossSpec::kPinball) {
        loss_sum += nn::PinballLoss(pred, y, options_.loss.tau, &grad);
      } else {
        loss_sum += nn::MseLoss(pred, y, &grad);
      }
      net_->Backward(grad);
      adam.Step();
      ++num_batches;
    }
    const double mean_loss =
        num_batches == 0 ? 0.0 : loss_sum / static_cast<double>(num_batches);
    epoch_span.SetAttr("loss", mean_loss);
    loss_gauge.Set(mean_loss);
    last_loss_ = mean_loss;
    // Epoch boundary: return idle recycled tensor buffers so cache
    // residency never outlives the epoch that shaped it.
    nn::ArenaTrim();
  }
  return Status::OK();
}

double LwnnEstimator::EstimateCardinality(const Query& query) const {
  CONFCARD_CHECK_MSG(net_ != nullptr, "lw-nn: not trained");
  static obs::Counter& queries =
      obs::Metrics().GetCounter("ce.lw-nn.queries");
  static obs::Histogram& latency =
      obs::Metrics().GetHistogram("ce.lw-nn.infer_us");
  Stopwatch watch;
  nn::Tensor in = nn::Tensor::Uninitialized(1, flat_->dim() + 2);
  FeaturesInto(query, in.RowPtr(0));
  nn::Tensor out = net_->Apply(in);
  double card = std::exp(static_cast<double>(out.At(0, 0))) - 1.0;
  latency.Record(watch.ElapsedMicros());
  queries.Increment();
  card = std::clamp(card, 0.0, num_rows_);
  if (fault::Enabled()) {
    card = fault::PerturbValue("lwnn.forward", QueryContentKey(query), card);
  }
  return card;
}

void LwnnEstimator::EstimateBatch(const Query* queries, size_t n,
                                  double* out) const {
  if (n == 0) return;
  CONFCARD_CHECK_MSG(net_ != nullptr, "lw-nn: not trained");
  static obs::Counter& query_counter =
      obs::Metrics().GetCounter("ce.lw-nn.queries");
  static obs::Histogram& latency =
      obs::Metrics().GetHistogram("ce.lw-nn.infer_us");
  Stopwatch watch;
  const size_t dim = flat_->dim() + 2;
  nn::Tensor in = nn::Tensor::Uninitialized(n, dim);
  // Features are written straight into the packed tensor rows; with the
  // arena recycling the activation buffers, a steady-state batch of a
  // recurring size performs no heap allocation at all (the serving
  // front-end's bench gates this).
  for (size_t i = 0; i < n; ++i) FeaturesInto(queries[i], in.RowPtr(i));
  nn::Tensor pred = net_->ApplyFused(in);
  const bool faults = fault::Enabled();
  for (size_t i = 0; i < n; ++i) {
    const double card = std::exp(static_cast<double>(pred.At(i, 0))) - 1.0;
    out[i] = std::clamp(card, 0.0, num_rows_);
    if (faults) {
      out[i] = fault::PerturbValue("lwnn.forward",
                                   QueryContentKey(queries[i]), out[i]);
    }
  }
  const double per_query_us = watch.ElapsedMicros() / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) latency.Record(per_query_us);
  query_counter.Increment(n);
}

Status LwnnEstimator::SaveToFile(const std::string& path) const {
  if (net_ == nullptr) return Status::FailedPrecondition("lw-nn: not trained");
  ArchiveWriter w(kLwnnMagic, kLwnnVersion);
  w.WriteU64(options_.hidden1);
  w.WriteU64(options_.hidden2);
  w.WriteI32(options_.epochs);
  w.WriteU64(options_.batch_size);
  w.WriteDouble(options_.lr);
  w.WriteI32(options_.histogram_buckets);
  w.WriteI32(options_.loss.kind == LossSpec::kPinball ? 1 : 0);
  w.WriteDouble(options_.loss.tau);
  w.WriteU64(options_.seed);
  w.WriteDouble(num_rows_);
  w.WriteU64(flat_->dim());
  nn::SerializeParameters(*net_, &w);
  return w.SaveToFile(path);
}

Result<LwnnEstimator> LwnnEstimator::LoadFromFile(const Table& table,
                                                  const std::string& path) {
  CONFCARD_ASSIGN_OR_RETURN(
      ArchiveReader r,
      ArchiveReader::FromFile(path, kLwnnMagic, kLwnnVersion));
  Options opts;
  opts.hidden1 = static_cast<size_t>(r.ReadU64());
  opts.hidden2 = static_cast<size_t>(r.ReadU64());
  opts.epochs = r.ReadI32();
  opts.batch_size = static_cast<size_t>(r.ReadU64());
  opts.lr = r.ReadDouble();
  opts.histogram_buckets = r.ReadI32();
  opts.loss.kind = r.ReadI32() == 1 ? LossSpec::kPinball : LossSpec::kDefault;
  opts.loss.tau = r.ReadDouble();
  opts.seed = r.ReadU64();
  const double num_rows = r.ReadDouble();
  const uint64_t flat_dim = r.ReadU64();
  CONFCARD_RETURN_NOT_OK(r.status());

  LwnnEstimator est(opts);
  est.num_rows_ = static_cast<double>(table.num_rows());
  if (est.num_rows_ != num_rows) {
    return Status::InvalidArgument(
        "lw-nn archive was trained on a table with a different row count");
  }
  est.flat_ = std::make_unique<FlatQueryFeaturizer>(table);
  if (est.flat_->dim() != flat_dim) {
    return Status::InvalidArgument(
        "lw-nn archive featurization does not match this table");
  }
  est.histogram_ =
      std::make_unique<HistogramEstimator>(table, opts.histogram_buckets);
  Rng rng(opts.seed);
  est.net_ = std::make_unique<nn::Mlp>(
      std::vector<size_t>{est.flat_->dim() + 2, opts.hidden1, opts.hidden2,
                          1},
      rng);
  CONFCARD_RETURN_NOT_OK(nn::DeserializeParameters(*est.net_, &r));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in lw-nn archive");
  }
  return est;
}

std::unique_ptr<SupervisedEstimator> LwnnEstimator::CloneArchitecture(
    uint64_t seed_offset) const {
  Options opts = options_;
  opts.seed += seed_offset;
  return std::make_unique<LwnnEstimator>(opts);
}

}  // namespace confcard
