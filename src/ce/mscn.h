// MSCN estimators: the supervised query-driven model of the paper's
// evaluation, for single-table and join workloads.
#ifndef CONFCARD_CE_MSCN_H_
#define CONFCARD_CE_MSCN_H_

#include <memory>

#include "ce/estimator.h"
#include "ce/featurizer.h"
#include "ce/mscn_model.h"
#include "ce/sampling.h"
#include "query/join_query.h"

namespace confcard {

/// Single-table MSCN with materialized-sample bitmaps.
class MscnEstimator : public SupervisedEstimator {
 public:
  struct Options {
    MscnConfig model;
    /// Materialized sample size for bitmap features (0 disables bitmaps).
    size_t bitmap_size = 64;
  };

  MscnEstimator();
  explicit MscnEstimator(Options options);

  std::string name() const override { return "mscn"; }
  double EstimateCardinality(const Query& query) const override;
  /// Featurizes all queries and runs one packed MscnModel forward (a
  /// GEMM over the batch instead of n GEMVs). Bit-identical to the
  /// per-query loop.
  void EstimateBatch(const Query* queries, size_t n,
                     double* out) const override;

  Status Train(const Table& table, const Workload& workload) override;
  std::unique_ptr<SupervisedEstimator> CloneArchitecture(
      uint64_t seed_offset) const override;
  void SetLoss(const LossSpec& loss) override { options_.model.loss = loss; }
  void RepublishTrainingTelemetry() const override;

  /// Persists the trained estimator (options + network weights) to
  /// `path`. The featurizer and sample bitmaps are deterministic
  /// functions of (table, seed), so they are rebuilt at load time
  /// rather than stored.
  Status SaveToFile(const std::string& path) const;
  /// Restores an estimator saved with SaveToFile against the SAME table
  /// (shape and content): featurization dims are validated.
  static Result<MscnEstimator> LoadFromFile(const Table& table,
                                            const std::string& path);

 private:
  void PublishTrainMeta() const;

  Options options_;
  double num_rows_ = 0.0;
  std::unique_ptr<SamplingEstimator> sampler_;
  std::unique_ptr<MscnFeaturizer> featurizer_;
  std::unique_ptr<MscnModel> model_;
};

/// MSCN over SPJ join queries (Figures 3-4). Not a CardinalityEstimator
/// — join queries have their own type — but exposes the same train /
/// clone / loss hooks so the conformal layer can wrap it identically.
class MscnJoinEstimator {
 public:
  explicit MscnJoinEstimator(MscnConfig config = {});

  std::string name() const { return "mscn-join"; }

  /// Process-unique instance id (see CardinalityEstimator::instance_id).
  uint64_t instance_id() const { return instance_id_; }

  Status Train(const Database& db, const JoinWorkload& workload);
  double EstimateCardinality(const JoinQuery& query) const;
  /// Batched counterpart of EstimateCardinality (one packed forward;
  /// bit-identical results). Mirrors CardinalityEstimator::EstimateBatch
  /// for the join-query type.
  void EstimateBatch(const JoinQuery* queries, size_t n, double* out) const;

  std::unique_ptr<MscnJoinEstimator> CloneArchitecture(
      uint64_t seed_offset) const;
  void SetLoss(const LossSpec& loss) { config_.loss = loss; }

  /// Same contract as SupervisedEstimator::RepublishTrainingTelemetry.
  void RepublishTrainingTelemetry() const;

  /// Flat features for the difficulty model U(X) on join workloads.
  std::vector<float> FlatFeatures(const JoinQuery& query) const;

 private:
  static uint64_t NextInstanceId();

  MscnConfig config_;
  uint64_t instance_id_ = NextInstanceId();
  std::unique_ptr<MscnJoinFeaturizer> featurizer_;
  std::unique_ptr<MscnModel> model_;
};

}  // namespace confcard

#endif  // CONFCARD_CE_MSCN_H_
