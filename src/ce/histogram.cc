#include "ce/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace confcard {

ColumnHistogram::ColumnHistogram(const Column& column, int num_buckets,
                                 int64_t max_exact_domain) {
  CONFCARD_CHECK(num_buckets >= 1);
  num_rows_ = column.size();
  if (column.is_categorical() && column.domain_size() <= max_exact_domain) {
    exact_ = true;
    freq_.assign(static_cast<size_t>(column.domain_size()), 0.0);
    for (double v : column.data()) {
      freq_[static_cast<size_t>(v)] += 1.0;
    }
    return;
  }

  std::vector<double> sorted = column.data();
  std::sort(sorted.begin(), sorted.end());
  if (sorted.empty()) {
    bounds_ = {0.0, 0.0};
    counts_ = {0.0};
    distinct_ = {1.0};
    return;
  }
  // Equi-depth boundaries with duplicate collapse.
  std::vector<size_t> cut_idx;  // start index of each bucket
  cut_idx.push_back(0);
  for (int b = 1; b < num_buckets; ++b) {
    size_t idx = static_cast<size_t>(static_cast<double>(b) / num_buckets *
                                     static_cast<double>(sorted.size()));
    if (idx >= sorted.size()) idx = sorted.size() - 1;
    // Advance to a boundary value change so buckets have distinct bounds.
    double v = sorted[idx];
    if (v > sorted[cut_idx.back()]) cut_idx.push_back(idx);
  }
  for (size_t b = 0; b < cut_idx.size(); ++b) {
    size_t begin = cut_idx[b];
    size_t end = b + 1 < cut_idx.size() ? cut_idx[b + 1] : sorted.size();
    bounds_.push_back(sorted[begin]);
    counts_.push_back(static_cast<double>(end - begin));
    double d = 1.0;
    for (size_t i = begin + 1; i < end; ++i) {
      if (sorted[i] != sorted[i - 1]) d += 1.0;
    }
    distinct_.push_back(d);
  }
  bounds_.push_back(sorted.back());
}

double ColumnHistogram::EstimateEquality(double v) const {
  if (num_rows_ == 0) return 0.0;
  if (exact_) {
    int64_t code = static_cast<int64_t>(v);
    if (code < 0 || static_cast<size_t>(code) >= freq_.size()) return 0.0;
    return freq_[static_cast<size_t>(code)] /
           static_cast<double>(num_rows_);
  }
  // Bucket containing v; assume uniform spread over its distinct values.
  if (bounds_.size() < 2 || v < bounds_.front() || v > bounds_.back()) {
    return 0.0;
  }
  size_t b = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end() - 1, v) -
      bounds_.begin());
  if (b > 0) --b;
  return counts_[b] / std::max(distinct_[b], 1.0) /
         static_cast<double>(num_rows_);
}

double ColumnHistogram::EstimateSelectivity(double lo, double hi) const {
  if (num_rows_ == 0 || hi < lo) return 0.0;
  if (exact_) {
    int64_t from = std::max<int64_t>(0, static_cast<int64_t>(std::ceil(lo)));
    int64_t to = std::min<int64_t>(static_cast<int64_t>(freq_.size()) - 1,
                                   static_cast<int64_t>(std::floor(hi)));
    double total = 0.0;
    for (int64_t c = from; c <= to; ++c) {
      total += freq_[static_cast<size_t>(c)];
    }
    return total / static_cast<double>(num_rows_);
  }
  if (bounds_.size() < 2) return 0.0;
  const double cmin = bounds_.front(), cmax = bounds_.back();
  if (hi < cmin || lo > cmax) return 0.0;

  double total = 0.0;
  const size_t nb = counts_.size();
  for (size_t b = 0; b < nb; ++b) {
    double blo = bounds_[b];
    double bhi = bounds_[b + 1];
    if (bhi < lo || blo > hi) continue;
    double width = bhi - blo;
    double overlap;
    if (width <= 0.0) {
      overlap = 1.0;  // single-value bucket fully covered
    } else {
      overlap = (std::min(hi, bhi) - std::max(lo, blo)) / width;
      overlap = std::clamp(overlap, 0.0, 1.0);
    }
    total += counts_[b] * overlap;
  }
  return std::min(1.0, total / static_cast<double>(num_rows_));
}

HistogramEstimator::HistogramEstimator(const Table& table, int num_buckets)
    : num_rows_(static_cast<double>(table.num_rows())) {
  histograms_.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    histograms_.emplace_back(table.column(c), num_buckets);
  }
}

double HistogramEstimator::PredicateSelectivity(const Predicate& pred) const {
  CONFCARD_DCHECK(pred.column >= 0 &&
                  static_cast<size_t>(pred.column) < histograms_.size());
  const ColumnHistogram& h = histograms_[static_cast<size_t>(pred.column)];
  if (pred.op == PredOp::kEq) return h.EstimateEquality(pred.lo);
  return h.EstimateSelectivity(pred.lo, pred.hi);
}

double HistogramEstimator::EstimateCardinality(const Query& query) const {
  double sel = 1.0;
  for (const Predicate& p : query.predicates) {
    sel *= PredicateSelectivity(p);
  }
  return sel * num_rows_;
}

}  // namespace confcard
