// Feature-subspace residual correction, after postgrespro/aqo's
// executed-query feedback (cardinality_estimation.c's get_fss_for_object
// + load_fss): executed queries feed their true cardinality back into a
// small knowledge table keyed by a hash of the query's *feature
// subspace* — the set of (column, operator) pairs, not the literals — so
// every future query touching the same subspace gets its point estimate
// multiplied by a learned bias correction. The correction lives in log
// space (cardinalities span orders of magnitude) and is EWMA-smoothed,
// so it tracks drift instead of averaging over regimes.
//
// The table is a fixed-capacity open-addressing hash map: no allocation
// after construction (the serving feedback path is gated at zero
// steady-state allocations), deterministic eviction (the probe window's
// lowest-count slot), and single-writer semantics — each serving shard
// owns one corrector, touched only by its worker at micro-batch
// boundaries.
#ifndef CONFCARD_CE_RESIDUAL_H_
#define CONFCARD_CE_RESIDUAL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "query/predicate.h"

namespace confcard {

class ResidualCorrector {
 public:
  struct Options {
    /// Slot count, rounded up to a power of two. Fixed for the
    /// corrector's lifetime; collisions evict within the probe window.
    size_t capacity = 512;
    /// EWMA weight of the newest log-residual.
    double smoothing = 0.25;
    /// Observations a subspace needs before its correction is applied.
    uint64_t min_observations = 8;
    /// Clamp on the multiplicative correction factor (applied
    /// symmetrically: factors stay within [1/max, max]).
    double max_correction = 16.0;
  };

  ResidualCorrector();
  explicit ResidualCorrector(Options options);

  /// FNV-1a hash of the query's feature subspace: sorted (column, op)
  /// pairs, literals excluded. Two queries over the same columns with
  /// the same operator shapes share a subspace.
  static uint64_t SubspaceHash(const Query& query);

  /// `estimate` scaled by the learned correction for `fss` (identity
  /// until min_observations have been seen for that subspace).
  double Correct(uint64_t fss, double estimate) const;

  /// Folds one executed query's outcome into the subspace entry:
  /// bias <- (1-smoothing) * bias + smoothing * log((truth+1)/(est+1)).
  void Observe(uint64_t fss, double estimate, double truth);

  /// Drops every entry (stage-1 recalibration resets stale corrections).
  void Reset();

  /// Occupied slots.
  size_t entries() const { return entries_; }
  /// Lifetime Observe calls.
  uint64_t observed() const { return observed_; }
  /// Lifetime evictions (probe window full, lowest-count slot replaced).
  uint64_t evictions() const { return evictions_; }

  const Options& options() const { return options_; }

 private:
  struct Slot {
    uint64_t fss = 0;
    uint64_t count = 0;  // 0 = empty
    double bias = 0.0;   // EWMA of log((truth+1)/(estimate+1))
  };

  static constexpr size_t kProbeWindow = 8;

  /// Slot serving `fss` for reads; nullptr when absent.
  const Slot* Find(uint64_t fss) const;
  /// Slot for writes: existing entry, a free probe-window slot, or the
  /// deterministically evicted lowest-count slot in the window.
  Slot* FindOrEvict(uint64_t fss);

  Options options_;
  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t entries_ = 0;
  uint64_t observed_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace confcard

#endif  // CONFCARD_CE_RESIDUAL_H_
