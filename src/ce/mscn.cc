#include "ce/mscn.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/check.h"
#include "common/fault.h"
#include "common/stopwatch.h"
#include "query/validate.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace confcard {

namespace {
// 'CMS1' — confcard mscn archive.
constexpr uint32_t kMscnMagic = 0x434D5331;
constexpr uint32_t kMscnVersion = 1;

// Queries per internal forward. Each query's output rows depend only on
// its own packed input rows, so chunk boundaries cannot change any value
// — they only keep the packed set tensors and MLP intermediates inside
// the last-level cache instead of streaming the whole workload through
// DRAM per layer.
constexpr size_t kMscnBatchChunk = 256;
}  // namespace

MscnEstimator::MscnEstimator() : MscnEstimator(Options{}) {}

MscnEstimator::MscnEstimator(Options options) : options_(options) {}

void MscnEstimator::PublishTrainMeta() const {
  obs::Metrics().SetMeta(
      "config.mscn", "epochs=" + std::to_string(options_.model.epochs) +
                         " set_hidden=" +
                         std::to_string(options_.model.set_hidden) +
                         " final_hidden=" +
                         std::to_string(options_.model.final_hidden) +
                         " seed=" + std::to_string(options_.model.seed));
}

void MscnEstimator::RepublishTrainingTelemetry() const {
  if (model_ == nullptr) return;
  PublishTrainMeta();
  obs::Metrics().GetGauge("nn.mscn.last_loss").Set(model_->last_loss());
}

Status MscnEstimator::Train(const Table& table, const Workload& workload) {
  if (workload.empty()) {
    return Status::InvalidArgument("mscn: empty training workload");
  }
  obs::TraceSpan span("train.mscn");
  span.SetAttr("train_queries", static_cast<double>(workload.size()));
  CONFCARD_RETURN_NOT_OK(fault::Check("mscn.train", options_.model.seed));
  PublishTrainMeta();
  obs::Metrics().GetCounter("ce.mscn.trainings").Increment();
  num_rows_ = static_cast<double>(table.num_rows());
  if (options_.bitmap_size > 0) {
    sampler_ = std::make_unique<SamplingEstimator>(
        table, options_.bitmap_size, options_.model.seed ^ 0xB17Eull);
  } else {
    sampler_.reset();
  }
  featurizer_ = std::make_unique<MscnFeaturizer>(table, sampler_.get());
  model_ = std::make_unique<MscnModel>(featurizer_->table_dim(),
                                       featurizer_->join_dim(),
                                       featurizer_->predicate_dim(),
                                       options_.model);

  std::vector<MscnInput> inputs;
  std::vector<double> targets;
  inputs.reserve(workload.size());
  targets.reserve(workload.size());
  for (const LabeledQuery& lq : workload) {
    inputs.push_back(featurizer_->Featurize(lq.query));
    targets.push_back(std::log(lq.cardinality + 1.0));
  }
  return model_->Train(inputs, targets);
}

double MscnEstimator::EstimateCardinality(const Query& query) const {
  CONFCARD_CHECK_MSG(model_ != nullptr, "mscn: not trained");
  static obs::Counter& queries =
      obs::Metrics().GetCounter("ce.mscn.queries");
  static obs::Histogram& latency =
      obs::Metrics().GetHistogram("ce.mscn.infer_us");
  Stopwatch watch;
  double log_card = model_->PredictLogCard(featurizer_->Featurize(query));
  latency.Record(watch.ElapsedMicros());
  queries.Increment();
  // A single-table count can never exceed the table size; clamping also
  // guards against exp() blow-ups on out-of-distribution queries.
  double card = std::clamp(std::exp(log_card) - 1.0, 0.0, num_rows_);
  if (fault::Enabled()) {
    card = fault::PerturbValue("mscn.forward", QueryContentKey(query), card);
  }
  return card;
}

void MscnEstimator::EstimateBatch(const Query* queries, size_t n,
                                  double* out) const {
  if (n == 0) return;
  CONFCARD_CHECK_MSG(model_ != nullptr, "mscn: not trained");
  static obs::Counter& query_counter =
      obs::Metrics().GetCounter("ce.mscn.queries");
  static obs::Histogram& latency =
      obs::Metrics().GetHistogram("ce.mscn.infer_us");
  Stopwatch watch;
  for (size_t start = 0; start < n; start += kMscnBatchChunk) {
    const size_t end = std::min(n, start + kMscnBatchChunk);
    const size_t bq = end - start;
    MscnPackedBatch packed;
    packed.batch_size = bq;
    packed.table_offsets.resize(bq + 1);
    packed.pred_offsets.resize(bq + 1);
    packed.join_offsets.assign(bq + 1, 0);  // single-table: no join set
    packed.table_offsets[0] = 0;
    packed.pred_offsets[0] = 0;
    size_t npred = 0;
    for (size_t i = 0; i < bq; ++i) {
      packed.table_offsets[i + 1] = i + 1;
      npred += queries[start + i].predicates.size();
      packed.pred_offsets[i + 1] = npred;
    }
    packed.tables = nn::Tensor::Uninitialized(bq, featurizer_->table_dim());
    packed.predicates =
        nn::Tensor::Uninitialized(npred, featurizer_->predicate_dim());
    for (size_t i = 0; i < bq; ++i) {
      const Query& q = queries[start + i];
      featurizer_->FeaturizeTableRowInto(q, packed.tables.RowPtr(i));
      size_t row = packed.pred_offsets[i];
      for (const Predicate& p : q.predicates) {
        featurizer_->FeaturizePredicateRowInto(
            p, packed.predicates.RowPtr(row++));
      }
    }
    model_->PredictLogCardPacked(packed, out + start);
  }
  const bool faults = fault::Enabled();
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::clamp(std::exp(out[i]) - 1.0, 0.0, num_rows_);
    if (faults) {
      out[i] = fault::PerturbValue("mscn.forward",
                                   QueryContentKey(queries[i]), out[i]);
    }
  }
  const double per_query_us = watch.ElapsedMicros() / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) latency.Record(per_query_us);
  query_counter.Increment(n);
}

Status MscnEstimator::SaveToFile(const std::string& path) const {
  if (model_ == nullptr) {
    return Status::FailedPrecondition("mscn: not trained");
  }
  ArchiveWriter w(kMscnMagic, kMscnVersion);
  const MscnConfig& mc = options_.model;
  w.WriteU64(mc.set_hidden);
  w.WriteU64(mc.final_hidden);
  w.WriteI32(mc.epochs);
  w.WriteU64(mc.batch_size);
  w.WriteDouble(mc.lr);
  w.WriteI32(mc.loss.kind == LossSpec::kPinball ? 1 : 0);
  w.WriteDouble(mc.loss.tau);
  w.WriteU64(mc.seed);
  w.WriteU64(options_.bitmap_size);
  w.WriteDouble(num_rows_);
  // Featurization dims, validated at load.
  w.WriteU64(featurizer_->table_dim());
  w.WriteU64(featurizer_->predicate_dim());
  model_->SerializeParams(&w);
  return w.SaveToFile(path);
}

Result<MscnEstimator> MscnEstimator::LoadFromFile(const Table& table,
                                                  const std::string& path) {
  CONFCARD_ASSIGN_OR_RETURN(
      ArchiveReader r,
      ArchiveReader::FromFile(path, kMscnMagic, kMscnVersion));
  Options opts;
  opts.model.set_hidden = static_cast<size_t>(r.ReadU64());
  opts.model.final_hidden = static_cast<size_t>(r.ReadU64());
  opts.model.epochs = r.ReadI32();
  opts.model.batch_size = static_cast<size_t>(r.ReadU64());
  opts.model.lr = r.ReadDouble();
  opts.model.loss.kind =
      r.ReadI32() == 1 ? LossSpec::kPinball : LossSpec::kDefault;
  opts.model.loss.tau = r.ReadDouble();
  opts.model.seed = r.ReadU64();
  opts.bitmap_size = static_cast<size_t>(r.ReadU64());
  const double num_rows = r.ReadDouble();
  const uint64_t table_dim = r.ReadU64();
  const uint64_t pred_dim = r.ReadU64();
  CONFCARD_RETURN_NOT_OK(r.status());

  MscnEstimator est(opts);
  est.num_rows_ = static_cast<double>(table.num_rows());
  if (est.num_rows_ != num_rows) {
    return Status::InvalidArgument(
        "mscn archive was trained on a table with a different row count");
  }
  if (opts.bitmap_size > 0) {
    est.sampler_ = std::make_unique<SamplingEstimator>(
        table, opts.bitmap_size, opts.model.seed ^ 0xB17Eull);
  }
  est.featurizer_ =
      std::make_unique<MscnFeaturizer>(table, est.sampler_.get());
  if (est.featurizer_->table_dim() != table_dim ||
      est.featurizer_->predicate_dim() != pred_dim) {
    return Status::InvalidArgument(
        "mscn archive featurization does not match this table");
  }
  est.model_ = std::make_unique<MscnModel>(
      est.featurizer_->table_dim(), est.featurizer_->join_dim(),
      est.featurizer_->predicate_dim(), opts.model);
  CONFCARD_RETURN_NOT_OK(est.model_->DeserializeParams(&r));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in mscn archive");
  }
  return est;
}

std::unique_ptr<SupervisedEstimator> MscnEstimator::CloneArchitecture(
    uint64_t seed_offset) const {
  Options opts = options_;
  opts.model.seed += seed_offset;
  return std::make_unique<MscnEstimator>(opts);
}

void MscnJoinEstimator::RepublishTrainingTelemetry() const {
  if (model_ == nullptr) return;
  obs::Metrics().GetGauge("nn.mscn.last_loss").Set(model_->last_loss());
}

uint64_t MscnJoinEstimator::NextInstanceId() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

MscnJoinEstimator::MscnJoinEstimator(MscnConfig config) : config_(config) {}

Status MscnJoinEstimator::Train(const Database& db,
                                const JoinWorkload& workload) {
  if (workload.empty()) {
    return Status::InvalidArgument("mscn-join: empty training workload");
  }
  obs::TraceSpan span("train.mscn-join");
  span.SetAttr("train_queries", static_cast<double>(workload.size()));
  obs::Metrics().GetCounter("ce.mscn-join.trainings").Increment();
  featurizer_ = std::make_unique<MscnJoinFeaturizer>(db);
  model_ = std::make_unique<MscnModel>(featurizer_->table_dim(),
                                       featurizer_->join_dim(),
                                       featurizer_->predicate_dim(),
                                       config_);
  std::vector<MscnInput> inputs;
  std::vector<double> targets;
  inputs.reserve(workload.size());
  targets.reserve(workload.size());
  for (const LabeledJoinQuery& lq : workload) {
    inputs.push_back(featurizer_->Featurize(lq.query));
    targets.push_back(std::log(lq.cardinality + 1.0));
  }
  return model_->Train(inputs, targets);
}

double MscnJoinEstimator::EstimateCardinality(const JoinQuery& query) const {
  CONFCARD_CHECK_MSG(model_ != nullptr, "mscn-join: not trained");
  static obs::Counter& queries =
      obs::Metrics().GetCounter("ce.mscn-join.queries");
  static obs::Histogram& latency =
      obs::Metrics().GetHistogram("ce.mscn-join.infer_us");
  Stopwatch watch;
  double log_card = model_->PredictLogCard(featurizer_->Featurize(query));
  latency.Record(watch.ElapsedMicros());
  queries.Increment();
  return std::max(0.0, std::exp(log_card) - 1.0);
}

void MscnJoinEstimator::EstimateBatch(const JoinQuery* queries, size_t n,
                                      double* out) const {
  if (n == 0) return;
  CONFCARD_CHECK_MSG(model_ != nullptr, "mscn-join: not trained");
  static obs::Counter& query_counter =
      obs::Metrics().GetCounter("ce.mscn-join.queries");
  static obs::Histogram& latency =
      obs::Metrics().GetHistogram("ce.mscn-join.infer_us");
  Stopwatch watch;
  for (size_t start = 0; start < n; start += kMscnBatchChunk) {
    const size_t end = std::min(n, start + kMscnBatchChunk);
    const size_t bq = end - start;
    MscnPackedBatch packed;
    packed.batch_size = bq;
    packed.table_offsets.resize(bq + 1);
    packed.join_offsets.resize(bq + 1);
    packed.pred_offsets.resize(bq + 1);
    packed.table_offsets[0] = 0;
    packed.join_offsets[0] = 0;
    packed.pred_offsets[0] = 0;
    size_t nt = 0, nj = 0, np = 0;
    for (size_t i = 0; i < bq; ++i) {
      const JoinQuery& q = queries[start + i];
      nt += q.tables.size();
      nj += q.joins.size();
      np += q.predicates.size();
      packed.table_offsets[i + 1] = nt;
      packed.join_offsets[i + 1] = nj;
      packed.pred_offsets[i + 1] = np;
    }
    packed.tables = nn::Tensor::Uninitialized(nt, featurizer_->table_dim());
    packed.joins = nn::Tensor::Uninitialized(nj, featurizer_->join_dim());
    packed.predicates =
        nn::Tensor::Uninitialized(np, featurizer_->predicate_dim());
    for (size_t i = 0; i < bq; ++i) {
      const JoinQuery& q = queries[start + i];
      size_t trow = packed.table_offsets[i];
      for (const std::string& t : q.tables) {
        featurizer_->FeaturizeTableRowInto(t, packed.tables.RowPtr(trow++));
      }
      size_t jrow = packed.join_offsets[i];
      for (const JoinEdge& e : q.joins) {
        featurizer_->FeaturizeJoinRowInto(e, packed.joins.RowPtr(jrow++));
      }
      size_t prow = packed.pred_offsets[i];
      for (const TablePredicate& tp : q.predicates) {
        featurizer_->FeaturizePredicateRowInto(
            tp, packed.predicates.RowPtr(prow++));
      }
    }
    model_->PredictLogCardPacked(packed, out + start);
  }
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::max(0.0, std::exp(out[i]) - 1.0);
  }
  const double per_query_us = watch.ElapsedMicros() / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) latency.Record(per_query_us);
  query_counter.Increment(n);
}

std::unique_ptr<MscnJoinEstimator> MscnJoinEstimator::CloneArchitecture(
    uint64_t seed_offset) const {
  MscnConfig cfg = config_;
  cfg.seed += seed_offset;
  return std::make_unique<MscnJoinEstimator>(cfg);
}

std::vector<float> MscnJoinEstimator::FlatFeatures(
    const JoinQuery& query) const {
  CONFCARD_CHECK_MSG(featurizer_ != nullptr, "mscn-join: not trained");
  return featurizer_->FlatFeaturize(query);
}

}  // namespace confcard
