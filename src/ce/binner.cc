#include "ce/binner.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace confcard {

ColumnBinner::ColumnBinner(const Column& column, int max_numeric_bins) {
  CONFCARD_CHECK(max_numeric_bins >= 1);
  min_ = column.min_value();
  max_ = column.max_value();
  if (column.is_categorical()) {
    categorical_ = true;
    num_bins_ = static_cast<int>(column.domain_size());
    return;
  }
  // Equi-depth edges over the sorted data; duplicates collapse so bins
  // stay non-empty and strictly increasing.
  std::vector<double> sorted = column.data();
  std::sort(sorted.begin(), sorted.end());
  if (sorted.empty()) {
    num_bins_ = 1;
    return;
  }
  const int target = max_numeric_bins;
  for (int b = 1; b < target; ++b) {
    size_t idx = static_cast<size_t>(static_cast<double>(b) / target *
                                     static_cast<double>(sorted.size()));
    if (idx >= sorted.size()) idx = sorted.size() - 1;
    double edge = sorted[idx];
    if (edge >= max_) continue;  // keep the last bin non-degenerate
    if (edges_.empty() || edge > edges_.back()) edges_.push_back(edge);
  }
  num_bins_ = static_cast<int>(edges_.size()) + 1;
}

int ColumnBinner::BinOf(double value) const {
  if (categorical_) {
    int code = static_cast<int>(value);
    if (code < 0) return 0;
    if (code >= num_bins_) return num_bins_ - 1;
    return code;
  }
  // bin i covers (edges_[i-1], edges_[i]]: index of first edge >= value.
  auto it = std::lower_bound(edges_.begin(), edges_.end(), value);
  return static_cast<int>(it - edges_.begin());
}

std::pair<int, int> ColumnBinner::BinRange(double lo, double hi) const {
  if (hi < lo) return {1, 0};
  if (categorical_) {
    int blo = static_cast<int>(std::ceil(lo));
    int bhi = static_cast<int>(std::floor(hi));
    blo = std::max(blo, 0);
    bhi = std::min(bhi, num_bins_ - 1);
    return {blo, bhi};
  }
  if (hi < min_ || lo > max_) return {1, 0};
  return {BinOf(std::max(lo, min_)), BinOf(std::min(hi, max_))};
}

TableBinner::TableBinner(const Table& table, int max_numeric_bins) {
  binners_.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    binners_.emplace_back(table.column(c), max_numeric_bins);
  }
}

size_t TableBinner::TotalBins() const {
  size_t total = 0;
  for (const ColumnBinner& b : binners_) {
    total += static_cast<size_t>(b.num_bins());
  }
  return total;
}

std::vector<int> TableBinner::BinRow(const Table& table, size_t row) const {
  std::vector<int> out(binners_.size());
  for (size_t c = 0; c < binners_.size(); ++c) {
    out[c] = binners_[c].BinOf(table.At(row, c));
  }
  return out;
}

std::pair<int, int> TableBinner::PredicateBins(const Predicate& pred) const {
  CONFCARD_DCHECK(pred.column >= 0 &&
                  static_cast<size_t>(pred.column) < binners_.size());
  return binners_[static_cast<size_t>(pred.column)].BinRange(pred.lo,
                                                             pred.hi);
}

}  // namespace confcard
