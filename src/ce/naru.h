// Naru (Yang et al.): deep unsupervised cardinality estimation. A
// MADE-style masked autoregressive network factorizes the joint
// distribution of the (discretized) table as
// P(A1) P(A2|A1) ... P(Am|A1..Am-1); range/point queries are answered by
// progressive sampling over the learned conditionals (the Monte-Carlo
// integration of the original paper).
#ifndef CONFCARD_CE_NARU_H_
#define CONFCARD_CE_NARU_H_

#include <memory>
#include <vector>

#include "ce/binner.h"
#include "ce/estimator.h"
#include "nn/layers.h"

namespace confcard {

/// Naru hyper-parameters.
struct NaruConfig {
  size_t hidden = 64;
  int hidden_layers = 2;
  int epochs = 8;
  size_t batch_size = 128;
  double lr = 2e-3;
  /// Max equi-depth bins per numeric column (categorical columns keep
  /// their exact domains).
  int numeric_bins = 32;
  /// Rows used for training (uniformly subsampled when the table is
  /// larger).
  size_t max_train_rows = 60000;
  /// Progressive-sampling paths per query at inference.
  size_t num_samples = 32;
  uint64_t seed = 97;
};

/// The Naru estimator.
class NaruEstimator : public DataDrivenEstimator {
 public:
  explicit NaruEstimator(NaruConfig config = {});

  std::string name() const override { return "naru"; }
  Status Train(const Table& table) override;
  double EstimateCardinality(const Query& query) const override;

  /// Estimated selectivity in [0, 1] (EstimateCardinality / N).
  double EstimateSelectivity(const Query& query) const;

  const NaruConfig& config() const { return config_; }

  /// Persists the trained model (config + MADE weights). Binner
  /// statistics and masks are deterministic functions of (table,
  /// config), so they are rebuilt at load time.
  Status SaveToFile(const std::string& path) const;
  /// Restores a model saved with SaveToFile against the SAME table.
  static Result<NaruEstimator> LoadFromFile(const Table& table,
                                            const std::string& path);

 private:
  /// Builds the MADE masks and network for the current binner.
  void BuildNetwork(Rng& rng);
  /// One autoregressive sampling run; returns the mean path probability.
  double ProgressiveSample(const std::vector<std::pair<int, int>>& bin_ranges,
                           int last_constrained) const;

  NaruConfig config_;
  double num_rows_ = 0.0;
  std::unique_ptr<TableBinner> binner_;
  std::vector<size_t> block_offsets_;  // per-column logit block offsets
  // Inference goes through the cache-free Apply path, so const methods
  // (and concurrent per-query evaluation) never touch training scratch.
  std::unique_ptr<nn::Sequential> net_;
};

}  // namespace confcard

#endif  // CONFCARD_CE_NARU_H_
