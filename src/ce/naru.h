// Naru (Yang et al.): deep unsupervised cardinality estimation. A
// MADE-style masked autoregressive network factorizes the joint
// distribution of the (discretized) table as
// P(A1) P(A2|A1) ... P(Am|A1..Am-1); range/point queries are answered by
// progressive sampling over the learned conditionals (the Monte-Carlo
// integration of the original paper).
#ifndef CONFCARD_CE_NARU_H_
#define CONFCARD_CE_NARU_H_

#include <memory>
#include <vector>

#include "ce/binner.h"
#include "ce/estimator.h"
#include "nn/layers.h"

namespace confcard {

/// Naru hyper-parameters.
struct NaruConfig {
  size_t hidden = 64;
  int hidden_layers = 2;
  int epochs = 8;
  size_t batch_size = 128;
  double lr = 2e-3;
  /// Max equi-depth bins per numeric column (categorical columns keep
  /// their exact domains).
  int numeric_bins = 32;
  /// Rows used for training (uniformly subsampled when the table is
  /// larger).
  size_t max_train_rows = 60000;
  /// Progressive-sampling paths per query at inference.
  size_t num_samples = 32;
  uint64_t seed = 97;
  /// Route inference through the sparsity-aware sampling engine (one-hot
  /// weight gathers, active-path compaction, cross-query batching). Both
  /// paths produce bit-identical results; the dense path is kept as the
  /// reference for golden tests and benchmarks. Not serialized — it
  /// changes how the forward is computed, not what it computes.
  bool sparse_inference = true;
};

/// The Naru estimator.
class NaruEstimator : public DataDrivenEstimator {
 public:
  explicit NaruEstimator(NaruConfig config = {});

  std::string name() const override { return "naru"; }
  Status Train(const Table& table) override;
  double EstimateCardinality(const Query& query) const override;
  /// Cross-query batched progressive sampling: non-trivial queries share
  /// one forward per column step (their sample rows are stacked into a
  /// single block-sparse batch). Bit-identical to the per-query loop.
  void EstimateBatch(const Query* queries, size_t n,
                     double* out) const override;

  /// Estimated selectivity in [0, 1] (EstimateCardinality / N).
  double EstimateSelectivity(const Query& query) const;

  const NaruConfig& config() const { return config_; }
  /// Toggles the sparse engine at inference time (training is
  /// unaffected). Tests and benches flip this to compare both paths on
  /// the same trained weights.
  void set_sparse_inference(bool on) { config_.sparse_inference = on; }

  /// Persists the trained model (config + MADE weights). Binner
  /// statistics and masks are deterministic functions of (table,
  /// config), so they are rebuilt at load time.
  Status SaveToFile(const std::string& path) const;
  /// Restores a model saved with SaveToFile against the SAME table.
  static Result<NaruEstimator> LoadFromFile(const Table& table,
                                            const std::string& path);

 private:
  /// A query lowered to per-column bin ranges, ready for sampling.
  struct PreparedQuery {
    std::vector<std::pair<int, int>> ranges;  // inclusive bin range per col
    int last_constrained = -1;                // -1: no predicates
    bool empty_range = false;                 // some column's range is empty
  };

  /// Builds the MADE masks and network for the current binner.
  void BuildNetwork(Rng& rng);
  /// Intersects the query's predicates into per-column bin ranges.
  PreparedQuery Prepare(const Query& query) const;
  /// Reference sampler: dense MADE forward over all S sample rows each
  /// column step. Returns the mean path probability.
  double ProgressiveSampleDense(
      const std::vector<std::pair<int, int>>& bin_ranges,
      int last_constrained) const;
  /// Sparse engine: samples `n` prepared queries together. Per column
  /// step, live sample rows (path_prob != 0, query still constrained at
  /// this column) across all queries are compacted into one block-sparse
  /// batch; the forward gathers first-layer weight rows for the set
  /// one-hot indices and computes only the output columns of the current
  /// block. Writes mean path probabilities to sel_out[0..n). Each query
  /// draws from its own Rng stream in the per-query order, so results
  /// are bit-identical to ProgressiveSampleDense.
  void SampleBatchSparse(const PreparedQuery* queries, size_t n,
                         double* sel_out) const;

  NaruConfig config_;
  double num_rows_ = 0.0;
  std::unique_ptr<TableBinner> binner_;
  std::vector<size_t> block_offsets_;  // per-column logit block offsets
  // Inference goes through the cache-free Apply path, so const methods
  // (and concurrent per-query evaluation) never touch training scratch.
  std::unique_ptr<nn::Sequential> net_;
};

}  // namespace confcard

#endif  // CONFCARD_CE_NARU_H_
