// Per-column discretization: categorical columns keep their codes;
// numeric columns are quantized to equi-depth bins. Naru's autoregressive
// model and the featurizers operate on the resulting finite domains.
#ifndef CONFCARD_CE_BINNER_H_
#define CONFCARD_CE_BINNER_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "query/predicate.h"

namespace confcard {

/// Discretizer for one column.
class ColumnBinner {
 public:
  /// Builds the binner from column contents. Numeric columns get at most
  /// `max_numeric_bins` equi-depth bins (fewer when the column has fewer
  /// distinct values); categorical columns are identity-mapped.
  ColumnBinner(const Column& column, int max_numeric_bins);

  /// Number of discrete bins.
  int num_bins() const { return num_bins_; }

  /// Bin index of a value (values outside the observed range clamp to
  /// the first/last bin).
  int BinOf(double value) const;

  /// Smallest/largest bin index overlapping [lo, hi], or an empty range
  /// (first > second) when nothing overlaps.
  std::pair<int, int> BinRange(double lo, double hi) const;

  bool is_categorical() const { return categorical_; }

 private:
  bool categorical_ = false;
  int num_bins_ = 1;
  // For numeric columns: ascending bin boundaries; bin i covers
  // (edges_[i-1], edges_[i]] with edges_[-1] = -inf. edges_ has
  // num_bins_ - 1 entries; the last bin is unbounded above within the
  // column range.
  std::vector<double> edges_;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Binners for all columns of a table.
class TableBinner {
 public:
  TableBinner(const Table& table, int max_numeric_bins = 32);

  const ColumnBinner& column(size_t i) const { return binners_[i]; }
  size_t num_columns() const { return binners_.size(); }

  /// Total one-hot width: sum of per-column bin counts.
  size_t TotalBins() const;

  /// Per-column bin index of one table row.
  std::vector<int> BinRow(const Table& table, size_t row) const;

  /// Maps a predicate to the inclusive bin range it may touch on its
  /// column. Equality on a numeric value maps to that value's bin.
  std::pair<int, int> PredicateBins(const Predicate& pred) const;

 private:
  std::vector<ColumnBinner> binners_;
};

}  // namespace confcard

#endif  // CONFCARD_CE_BINNER_H_
