// Conjunctive query predicates over one table (Section II of the paper):
// point predicates A = v and range predicates lb <= A <= ub.
#ifndef CONFCARD_QUERY_PREDICATE_H_
#define CONFCARD_QUERY_PREDICATE_H_

#include <string>
#include <vector>

namespace confcard {

/// Predicate operator. Point predicates use kEq; ranges kBetween (a
/// one-sided range is expressed with an infinite bound).
enum class PredOp {
  kEq,
  kBetween,
};

/// One predicate on column index `column` of its table. For kEq the
/// value is `lo` (== `hi`); for kBetween the inclusive interval is
/// [lo, hi].
struct Predicate {
  int column = 0;
  PredOp op = PredOp::kEq;
  double lo = 0.0;
  double hi = 0.0;

  static Predicate Eq(int column, double value) {
    return Predicate{column, PredOp::kEq, value, value};
  }
  static Predicate Between(int column, double lo, double hi) {
    return Predicate{column, PredOp::kBetween, lo, hi};
  }

  /// True if `value` satisfies this predicate.
  bool Matches(double value) const {
    return value >= lo && value <= hi;
  }

  bool operator==(const Predicate& other) const {
    return column == other.column && op == other.op && lo == other.lo &&
           hi == other.hi;
  }
};

/// A conjunctive single-table COUNT(*) query.
struct Query {
  std::vector<Predicate> predicates;

  bool operator==(const Query& other) const {
    return predicates == other.predicates;
  }
};

/// Canonical debug rendering, e.g. "c3=5 AND 1<=c7<=9".
std::string ToString(const Predicate& pred);
std::string ToString(const Query& query);

/// A query labeled with its true cardinality (and the table size used to
/// normalize it to a selectivity). The labeled workload is the dataset D
/// of Section III.
struct LabeledQuery {
  Query query;
  double cardinality = 0.0;  // true COUNT(*)
  double num_rows = 1.0;     // N, for normalized selectivity

  double selectivity() const { return cardinality / num_rows; }
};

using Workload = std::vector<LabeledQuery>;

}  // namespace confcard

#endif  // CONFCARD_QUERY_PREDICATE_H_
