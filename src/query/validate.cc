#include "query/validate.h"

#include <bit>
#include <cmath>
#include <string>

namespace confcard {

Status ValidateQuery(const Query& query, size_t num_columns) {
  for (size_t i = 0; i < query.predicates.size(); ++i) {
    const Predicate& p = query.predicates[i];
    if (p.column < 0 || static_cast<size_t>(p.column) >= num_columns) {
      return Status::InvalidArgument(
          "predicate " + std::to_string(i) + " references column " +
          std::to_string(p.column) + " of a " + std::to_string(num_columns) +
          "-column table");
    }
    // NaN bounds fail both comparisons below, so they are rejected here
    // too, not just inverted ranges.
    if (!(p.lo <= p.hi)) {
      return Status::InvalidArgument(
          "predicate " + std::to_string(i) + " has lo > hi (or NaN bounds): " +
          ToString(p));
    }
    if (p.op == PredOp::kEq && p.lo != p.hi) {
      return Status::InvalidArgument("equality predicate " +
                                     std::to_string(i) + " has lo != hi");
    }
  }
  return Status::OK();
}

Status ValidateWorkload(const Workload& workload, size_t num_columns) {
  for (size_t i = 0; i < workload.size(); ++i) {
    const Status st = ValidateQuery(workload[i].query, num_columns);
    if (!st.ok()) {
      return Status::InvalidArgument("workload query " + std::to_string(i) +
                                     ": " + st.message());
    }
  }
  return Status::OK();
}

uint64_t QueryContentKey(const Query& query) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(query.predicates.size());
  for (const Predicate& p : query.predicates) {
    mix(static_cast<uint64_t>(static_cast<int64_t>(p.column)));
    mix(static_cast<uint64_t>(p.op));
    mix(std::bit_cast<uint64_t>(p.lo));
    mix(std::bit_cast<uint64_t>(p.hi));
  }
  return h;
}

}  // namespace confcard
