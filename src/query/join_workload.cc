#include "query/join_workload.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "exec/join.h"

namespace confcard {
namespace {

std::string QueryKey(const JoinQuery& q) {
  std::ostringstream out;
  for (const auto& t : q.tables) out << t << '|';
  for (const auto& tp : q.predicates) {
    out << tp.table << ':' << ToString(tp.pred) << '|';
  }
  return out.str();
}

}  // namespace

std::vector<JoinTemplate> DsbTemplates() {
  // All 15 non-empty subsets of the four dimension tables, joined to the
  // store_sales fact table; predicates on one attribute per dimension.
  const std::vector<std::pair<std::string, std::string>> kDims = {
      {"date_dim", "d_year"},
      {"store", "s_state"},
      {"item", "i_category"},
      {"customer", "c_state"},
  };
  std::vector<JoinTemplate> out;
  for (unsigned mask = 1; mask < 16; ++mask) {
    JoinTemplate t;
    t.tables.push_back("store_sales");
    for (size_t d = 0; d < kDims.size(); ++d) {
      if (mask & (1u << d)) {
        t.tables.push_back(kDims[d].first);
        t.predicate_columns.push_back(kDims[d]);
      }
    }
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<JoinTemplate> JobTemplates() {
  std::vector<JoinTemplate> out;
  // title + one satellite.
  out.push_back({{"title", "movie_companies"},
                 {{"title", "production_year"},
                  {"movie_companies", "company_type_id"}}});
  out.push_back(
      {{"title", "movie_info"},
       {{"title", "kind_id"}, {"movie_info", "info_type_id"}}});
  out.push_back(
      {{"title", "movie_keyword"},
       {{"title", "production_year"}, {"movie_keyword", "keyword_id"}}});
  out.push_back({{"title", "cast_info"},
                 {{"title", "kind_id"}, {"cast_info", "role_id"}}});
  // title + two satellites.
  out.push_back({{"title", "movie_companies", "movie_info"},
                 {{"title", "production_year"},
                  {"movie_companies", "company_type_id"},
                  {"movie_info", "info_type_id"}}});
  out.push_back({{"title", "movie_keyword", "cast_info"},
                 {{"title", "kind_id"},
                  {"movie_keyword", "keyword_id"},
                  {"cast_info", "role_id"}}});
  out.push_back({{"title", "movie_info", "cast_info"},
                 {{"title", "production_year"},
                  {"movie_info", "info_type_id"},
                  {"cast_info", "role_id"}}});
  // title + three satellites.
  out.push_back({{"title", "movie_companies", "movie_keyword", "cast_info"},
                 {{"title", "kind_id"},
                  {"movie_companies", "company_type_id"},
                  {"movie_keyword", "keyword_id"},
                  {"cast_info", "role_id"}}});
  // Lightly filtered variants (JOB has many): one satellite joins
  // without any predicate, so intermediates can be large and join-order
  // quality matters.
  out.push_back({{"title", "movie_keyword", "cast_info"},
                 {{"title", "production_year"},
                  {"movie_keyword", "keyword_id"}}});
  out.push_back({{"title", "movie_companies", "movie_info"},
                 {{"movie_companies", "company_type_id"}}});
  out.push_back({{"title", "movie_info", "movie_keyword"},
                 {{"title", "production_year"},
                  {"movie_keyword", "keyword_id"}}});
  return out;
}

Result<JoinWorkload> GenerateJoinWorkload(
    const Database& db, const std::vector<JoinTemplate>& templates,
    const JoinWorkloadConfig& cfg) {
  if (templates.empty()) {
    return Status::InvalidArgument("no join templates");
  }
  Rng rng(cfg.seed);
  JoinWorkload out;
  std::unordered_set<std::string> seen;

  for (const JoinTemplate& tpl : templates) {
    for (const std::string& t : tpl.tables) {
      if (!db.HasTable(t)) return Status::NotFound("table '" + t + "'");
    }
    std::vector<JoinEdge> edges = db.EdgesAmong(tpl.tables);
    if (tpl.tables.size() > 1 && edges.empty()) {
      return Status::InvalidArgument("template tables are not connected");
    }

    // For correlated literals: per non-anchor table, an index from its
    // join-key value (on the edge toward the anchor table) to row ids.
    const std::string& anchor_table = tpl.tables.front();
    std::unordered_map<std::string,
                       std::pair<int, std::unordered_map<int64_t,
                                                         std::vector<uint32_t>>>>
        key_index;  // table -> (anchor-side column idx, key -> rows)
    if (cfg.correlated_literals) {
      for (const std::string& t : tpl.tables) {
        if (t == anchor_table) continue;
        auto connecting = db.EdgesAmong({anchor_table, t});
        if (connecting.empty()) continue;
        const JoinEdge& e = connecting.front();
        const bool t_is_left = e.left_table == t;
        const std::string& t_col = t_is_left ? e.left_column
                                             : e.right_column;
        const std::string& a_col = t_is_left ? e.right_column
                                             : e.left_column;
        const Table& table = db.table(t);
        const Column& kc = table.ColumnByName(t_col);
        std::unordered_map<int64_t, std::vector<uint32_t>> index;
        for (size_t r = 0; r < kc.size(); ++r) {
          index[static_cast<int64_t>(kc[r])].push_back(
              static_cast<uint32_t>(r));
        }
        key_index[t] = {db.table(anchor_table).ColumnIndex(a_col),
                        std::move(index)};
      }
    }

    const size_t budget = cfg.queries_per_template * 10 + 20;
    size_t produced = 0;
    for (size_t attempt = 0;
         attempt < budget && produced < cfg.queries_per_template; ++attempt) {
      JoinQuery q;
      q.tables = tpl.tables;
      q.joins = edges;
      // Anchor row for correlated-literal mode.
      const Table& anchor = db.table(anchor_table);
      const size_t anchor_row =
          static_cast<size_t>(rng.NextUint64(anchor.num_rows()));
      for (const auto& [tname, cname] : tpl.predicate_columns) {
        const Table& table = db.table(tname);
        const Column& col = table.ColumnByName(cname);
        int col_idx = table.ColumnIndex(cname);
        // Literal source row: co-occurring through the join graph when
        // requested, independent otherwise.
        size_t source_row =
            static_cast<size_t>(rng.NextUint64(table.num_rows()));
        if (cfg.correlated_literals) {
          if (tname == anchor_table) {
            source_row = anchor_row;
          } else if (auto it = key_index.find(tname);
                     it != key_index.end() && it->second.first >= 0) {
            int64_t key = static_cast<int64_t>(anchor.At(
                anchor_row, static_cast<size_t>(it->second.first)));
            auto rows = it->second.second.find(key);
            if (rows != it->second.second.end() &&
                !rows->second.empty()) {
              source_row = rows->second[static_cast<size_t>(
                  rng.NextUint64(rows->second.size()))];
            }
          }
        }
        double center = col[source_row];
        const bool use_range =
            !col.is_categorical() && rng.NextDouble() < cfg.range_prob;
        if (!use_range) {
          q.predicates.push_back({tname, Predicate::Eq(col_idx, center)});
        } else {
          double span = col.max_value() - col.min_value();
          if (span <= 0.0) span = 1.0;
          double half = rng.NextDouble(0.0, cfg.max_range_frac) * span;
          q.predicates.push_back(
              {tname,
               Predicate::Between(col_idx, center - half, center + half)});
        }
      }
      if (cfg.dedup && !seen.insert(QueryKey(q)).second) continue;

      CONFCARD_ASSIGN_OR_RETURN(JoinExecResult exec, ExecuteJoin(db, q));
      if (static_cast<double>(exec.cardinality) < cfg.min_cardinality) {
        continue;
      }
      // Normalizer: the fact-side base table size (first table).
      double norm = static_cast<double>(db.table(tpl.tables[0]).num_rows());
      out.push_back(LabeledJoinQuery{
          std::move(q), static_cast<double>(exec.cardinality), norm});
      ++produced;
    }
  }
  return out;
}

}  // namespace confcard
