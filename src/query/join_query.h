// Select-project-join (SPJ) COUNT(*) queries over a Database.
#ifndef CONFCARD_QUERY_JOIN_QUERY_H_
#define CONFCARD_QUERY_JOIN_QUERY_H_

#include <string>
#include <vector>

#include "data/multitable.h"
#include "query/predicate.h"

namespace confcard {

/// A predicate scoped to one table of a join query. `pred.column` indexes
/// into that table's schema.
struct TablePredicate {
  std::string table;
  Predicate pred;

  bool operator==(const TablePredicate& other) const {
    return table == other.table && pred == other.pred;
  }
};

/// Conjunctive SPJ COUNT(*) query: the listed tables joined along
/// `joins`, filtered by `predicates`. `tables` must form a connected join
/// graph; the executor joins them left to right.
struct JoinQuery {
  std::vector<std::string> tables;
  std::vector<JoinEdge> joins;
  std::vector<TablePredicate> predicates;
};

/// A join query labeled with its exact cardinality. `num_rows` holds the
/// normalizer used for selectivity (the product of filtered-base-table
/// sizes is unwieldy; we use the cartesian size of the joined base
/// tables' fact side — callers may normalize differently).
struct LabeledJoinQuery {
  JoinQuery query;
  double cardinality = 0.0;
  double num_rows = 1.0;

  double selectivity() const { return cardinality / num_rows; }
};

using JoinWorkload = std::vector<LabeledJoinQuery>;

}  // namespace confcard

#endif  // CONFCARD_QUERY_JOIN_QUERY_H_
