// Unified single-table workload generator, after the generator of
// "Are we ready for learned cardinality estimation?" (Wang et al., VLDB
// 2021) that the paper uses: data-centered predicate values, mixed
// point/range predicates, configurable predicate counts, deduplication.
#ifndef CONFCARD_QUERY_WORKLOAD_H_
#define CONFCARD_QUERY_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/table.h"
#include "query/predicate.h"

namespace confcard {

/// How predicate literals are drawn.
enum class CenterMode {
  /// Literals come from a random data tuple (queries tend to be
  /// non-empty; the standard setting of the unified generator).
  kDataCentered,
  /// Literals drawn uniformly from each column's domain (produces many
  /// empty/low-cardinality queries; used for the workload-shift
  /// experiment of Figure 11).
  kUniform,
};

/// Generator configuration.
struct WorkloadConfig {
  size_t num_queries = 1000;
  /// Number of predicates drawn uniformly in [min_predicates,
  /// max_predicates] (clamped to the column count).
  int min_predicates = 1;
  int max_predicates = 4;
  /// Probability that a numeric column gets a range predicate rather
  /// than a point predicate. Categorical columns always get equality.
  double range_prob = 0.8;
  /// Maximum half-width of a range, as a fraction of the column domain.
  double max_range_frac = 0.15;
  CenterMode center_mode = CenterMode::kDataCentered;
  /// Columns eligible for predicates (empty = all columns).
  std::vector<int> allowed_columns;
  /// Drop duplicate queries (regenerating replacements, with a retry cap).
  bool dedup = true;
  /// Keep only queries with true selectivity within [min_selectivity,
  /// max_selectivity]. The paper's plots focus on selectivity < 0.1.
  double min_selectivity = 0.0;
  double max_selectivity = 1.0;
  uint64_t seed = 101;
};

/// Generates a labeled workload over `table`; true cardinalities are
/// computed exactly with the scan executor. May return fewer than
/// `num_queries` queries if the selectivity filter + dedup exhaust the
/// retry budget (10x oversampling).
Result<Workload> GenerateWorkload(const Table& table,
                                  const WorkloadConfig& config);

}  // namespace confcard

#endif  // CONFCARD_QUERY_WORKLOAD_H_
