// Query validation and content hashing, shared by the guarded serving
// path and the harness factories. Library-internal code may still CHECK
// on these invariants (programming errors fail fast); anything fed
// user-supplied queries or configs validates first and surfaces
// Status::InvalidArgument instead of aborting the process.
#ifndef CONFCARD_QUERY_VALIDATE_H_
#define CONFCARD_QUERY_VALIDATE_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "query/predicate.h"

namespace confcard {

/// Validates one query against a table with `num_columns` columns:
/// every predicate's column index must be in [0, num_columns), its
/// bounds finite-or-infinite (never NaN) with lo <= hi, and kEq
/// predicates must have lo == hi.
Status ValidateQuery(const Query& query, size_t num_columns);

/// ValidateQuery over every query of a labeled workload; the message
/// names the first offending query index.
Status ValidateWorkload(const Workload& workload, size_t num_columns);

/// FNV-1a content hash of a query (predicates only, not labels). Stable
/// across runs, thread counts, and batching — the deterministic key for
/// per-query fault injection.
uint64_t QueryContentKey(const Query& query);

}  // namespace confcard

#endif  // CONFCARD_QUERY_VALIDATE_H_
