#include "query/workload.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>

#include "common/rng.h"
#include "exec/scan.h"
#include "query/predicate.h"

namespace confcard {
namespace {

Status Validate(const Table& table, const WorkloadConfig& cfg) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot generate workload on empty table");
  }
  if (cfg.min_predicates < 1 || cfg.max_predicates < cfg.min_predicates) {
    return Status::InvalidArgument("bad predicate count range");
  }
  if (cfg.range_prob < 0.0 || cfg.range_prob > 1.0) {
    return Status::InvalidArgument("range_prob must be in [0,1]");
  }
  if (cfg.max_range_frac <= 0.0 || cfg.max_range_frac > 1.0) {
    return Status::InvalidArgument("max_range_frac must be in (0,1]");
  }
  if (cfg.min_selectivity > cfg.max_selectivity) {
    return Status::InvalidArgument("empty selectivity window");
  }
  for (int c : cfg.allowed_columns) {
    if (c < 0 || static_cast<size_t>(c) >= table.num_columns()) {
      return Status::OutOfRange("allowed column index out of range");
    }
  }
  return Status::OK();
}

}  // namespace

Result<Workload> GenerateWorkload(const Table& table,
                                  const WorkloadConfig& cfg) {
  CONFCARD_RETURN_NOT_OK(Validate(table, cfg));
  Rng rng(cfg.seed);

  std::vector<int> columns = cfg.allowed_columns;
  if (columns.empty()) {
    for (size_t i = 0; i < table.num_columns(); ++i) {
      columns.push_back(static_cast<int>(i));
    }
  }
  const int max_preds =
      std::min<int>(cfg.max_predicates, static_cast<int>(columns.size()));
  const int min_preds = std::min(cfg.min_predicates, max_preds);

  Workload out;
  out.reserve(cfg.num_queries);
  std::unordered_set<std::string> seen;
  const size_t budget = cfg.num_queries * 10 + 100;

  for (size_t attempt = 0; attempt < budget && out.size() < cfg.num_queries;
       ++attempt) {
    // Choose predicate columns without replacement.
    std::vector<int> cols = columns;
    rng.Shuffle(cols);
    int k = static_cast<int>(
        rng.NextInt64(min_preds, max_preds));
    cols.resize(static_cast<size_t>(k));
    std::sort(cols.begin(), cols.end());

    // Literal source: a data tuple or a uniform draw.
    size_t center_row = 0;
    if (cfg.center_mode == CenterMode::kDataCentered) {
      center_row = static_cast<size_t>(rng.NextUint64(table.num_rows()));
    }

    Query q;
    for (int c : cols) {
      const Column& col = table.column(static_cast<size_t>(c));
      double center;
      if (cfg.center_mode == CenterMode::kDataCentered) {
        center = col[center_row];
      } else if (col.is_categorical()) {
        center = static_cast<double>(
            rng.NextUint64(static_cast<uint64_t>(col.domain_size())));
      } else {
        center = rng.NextDouble(col.min_value(), col.max_value());
      }

      const bool use_range =
          !col.is_categorical() && rng.NextDouble() < cfg.range_prob;
      if (!use_range) {
        q.predicates.push_back(Predicate::Eq(c, center));
      } else {
        double span = col.max_value() - col.min_value();
        if (span <= 0.0) span = 1.0;
        double half = rng.NextDouble(0.0, cfg.max_range_frac) * span;
        q.predicates.push_back(
            Predicate::Between(c, center - half, center + half));
      }
    }

    if (cfg.dedup) {
      std::string key = ToString(q);
      if (!seen.insert(std::move(key)).second) continue;
    }

    double card = static_cast<double>(CountMatches(table, q));
    double sel = card / static_cast<double>(table.num_rows());
    if (sel < cfg.min_selectivity || sel > cfg.max_selectivity) continue;

    out.push_back(LabeledQuery{std::move(q), card,
                               static_cast<double>(table.num_rows())});
  }
  return out;
}

}  // namespace confcard
