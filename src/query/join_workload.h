// Join-query workload generation for the DSB/TPC-DS and JOB experiments.
// Mirrors the paper's setup: a fixed set of SPJ templates (join shape +
// predicate columns) instantiated with random literals, deduplicated,
// labeled with exact cardinalities.
#ifndef CONFCARD_QUERY_JOIN_WORKLOAD_H_
#define CONFCARD_QUERY_JOIN_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/multitable.h"
#include "query/join_query.h"

namespace confcard {

/// A reusable SPJ template: a connected set of tables plus the columns
/// (by table) that receive predicates when the template is instantiated.
struct JoinTemplate {
  std::vector<std::string> tables;
  /// (table, column name) pairs that get a literal per instantiation.
  std::vector<std::pair<std::string, std::string>> predicate_columns;
};

/// Configuration for template-based join workload generation.
struct JoinWorkloadConfig {
  /// Queries instantiated per template (the DSB setup of the paper uses
  /// 15 templates x 1000 queries).
  size_t queries_per_template = 100;
  /// Probability a numeric predicate column gets a range predicate.
  double range_prob = 0.5;
  /// Max half-width of range predicates as a fraction of the domain.
  double max_range_frac = 0.2;
  /// When true, the literals of one query are sampled from rows that
  /// actually co-occur through the join graph (anchor a row of the
  /// template's first table, follow join keys into the other tables).
  /// This reproduces the cross-table predicate correlation of
  /// hand-written benchmarks like JOB — the regime where independence-
  /// based estimators underestimate (Table I). When false, literals are
  /// sampled independently per table.
  bool correlated_literals = false;
  /// Keep only queries whose true cardinality is at least this many
  /// tuples (JOB-style workloads return non-trivial results; near-empty
  /// queries make additive upper bounds look artificially bad).
  double min_cardinality = 0.0;
  bool dedup = true;
  uint64_t seed = 211;
};

/// The 15 SPJ templates used for the DSB-like star schema: every
/// non-empty subset of the four dimensions joined to store_sales, with
/// predicates on dimension attributes.
std::vector<JoinTemplate> DsbTemplates();

/// SPJ templates over the IMDB-like schema in the spirit of JOB:
/// title joined with 1..4 satellite tables, predicates on title and
/// satellite attributes.
std::vector<JoinTemplate> JobTemplates();

/// Instantiates `templates` over `db` and labels each query with its
/// exact cardinality (hash-join executor). Literal values are sampled
/// from the data so queries are predominantly non-empty.
Result<JoinWorkload> GenerateJoinWorkload(
    const Database& db, const std::vector<JoinTemplate>& templates,
    const JoinWorkloadConfig& config);

}  // namespace confcard

#endif  // CONFCARD_QUERY_JOIN_WORKLOAD_H_
