#include "query/predicate.h"

#include <sstream>

namespace confcard {

std::string ToString(const Predicate& pred) {
  std::ostringstream out;
  if (pred.op == PredOp::kEq) {
    out << "c" << pred.column << "=" << pred.lo;
  } else {
    out << pred.lo << "<=c" << pred.column << "<=" << pred.hi;
  }
  return out.str();
}

std::string ToString(const Query& query) {
  std::ostringstream out;
  for (size_t i = 0; i < query.predicates.size(); ++i) {
    if (i > 0) out << " AND ";
    out << ToString(query.predicates[i]);
  }
  return out.str();
}

}  // namespace confcard
