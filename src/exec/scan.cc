#include "exec/scan.h"

#include "common/check.h"

namespace confcard {
namespace {

// Applies one predicate over the full column, collecting survivors.
void ScanFull(const Column& col, const Predicate& p,
              std::vector<uint32_t>& out) {
  const std::vector<double>& data = col.data();
  const double lo = p.lo, hi = p.hi;
  for (size_t i = 0; i < data.size(); ++i) {
    double v = data[i];
    if (v >= lo && v <= hi) out.push_back(static_cast<uint32_t>(i));
  }
}

// Applies one predicate over previous survivors.
void ScanSelected(const Column& col, const Predicate& p,
                  const std::vector<uint32_t>& in,
                  std::vector<uint32_t>& out) {
  const std::vector<double>& data = col.data();
  const double lo = p.lo, hi = p.hi;
  for (uint32_t idx : in) {
    double v = data[idx];
    if (v >= lo && v <= hi) out.push_back(idx);
  }
}

}  // namespace

uint64_t CountMatches(const Table& table, const Query& query) {
  if (query.predicates.empty()) return table.num_rows();
  if (query.predicates.size() == 1) {
    // Count-only fast path: no survivor list needed.
    const Predicate& p = query.predicates[0];
    CONFCARD_DCHECK(p.column >= 0 &&
                    static_cast<size_t>(p.column) < table.num_columns());
    const std::vector<double>& data =
        table.column(static_cast<size_t>(p.column)).data();
    const double lo = p.lo, hi = p.hi;
    uint64_t count = 0;
    for (double v : data) count += (v >= lo && v <= hi) ? 1 : 0;
    return count;
  }
  return FilterIndices(table, query).size();
}

std::vector<uint32_t> FilterIndices(const Table& table, const Query& query) {
  std::vector<uint32_t> current, next;
  bool first = true;
  for (const Predicate& p : query.predicates) {
    CONFCARD_DCHECK(p.column >= 0 &&
                    static_cast<size_t>(p.column) < table.num_columns());
    const Column& col = table.column(static_cast<size_t>(p.column));
    next.clear();
    if (first) {
      ScanFull(col, p, next);
      first = false;
    } else {
      ScanSelected(col, p, current, next);
    }
    std::swap(current, next);
    if (current.empty()) break;
  }
  if (first) {  // no predicates: all rows qualify
    current.resize(table.num_rows());
    for (size_t i = 0; i < table.num_rows(); ++i) {
      current[i] = static_cast<uint32_t>(i);
    }
  }
  return current;
}

std::vector<uint32_t> FilterIndices(const Table& table, const Query& query,
                                    const std::vector<uint32_t>& candidates) {
  std::vector<uint32_t> current = candidates, next;
  for (const Predicate& p : query.predicates) {
    const Column& col = table.column(static_cast<size_t>(p.column));
    next.clear();
    ScanSelected(col, p, current, next);
    std::swap(current, next);
    if (current.empty()) break;
  }
  return current;
}

}  // namespace confcard
