// Exact single-table evaluation of conjunctive predicates by columnar
// scan. This is the ground-truth oracle that labels training /
// calibration / test workloads.
#ifndef CONFCARD_EXEC_SCAN_H_
#define CONFCARD_EXEC_SCAN_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "query/predicate.h"

namespace confcard {

/// Exact COUNT(*) of `query` over `table`.
uint64_t CountMatches(const Table& table, const Query& query);

/// Row indices satisfying `query`, in ascending order.
std::vector<uint32_t> FilterIndices(const Table& table, const Query& query);

/// Row indices of `candidates` that additionally satisfy `query`.
std::vector<uint32_t> FilterIndices(const Table& table, const Query& query,
                                    const std::vector<uint32_t>& candidates);

}  // namespace confcard

#endif  // CONFCARD_EXEC_SCAN_H_
