#include "exec/join.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "exec/scan.h"

namespace confcard {
namespace {

// A (table, column) pair materialized in the intermediate relation.
struct CarriedColumn {
  std::string table;
  std::string column;
  std::vector<double> values;
};

int FindCarried(const std::vector<CarriedColumn>& cols,
                const std::string& table, const std::string& column) {
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].table == table && cols[i].column == column) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

// Per-table filter query from the join query's predicates.
Query PredicatesFor(const JoinQuery& jq, const std::string& table) {
  Query q;
  for (const TablePredicate& tp : jq.predicates) {
    if (tp.table == table) q.predicates.push_back(tp.pred);
  }
  return q;
}

bool Joined(const std::vector<std::string>& joined, const std::string& t) {
  return std::find(joined.begin(), joined.end(), t) != joined.end();
}

}  // namespace

Result<JoinExecResult> ExecuteJoin(const Database& db, const JoinQuery& query,
                                   uint64_t max_intermediate) {
  if (query.tables.empty()) {
    return Status::InvalidArgument("join query has no tables");
  }
  for (const std::string& t : query.tables) {
    if (!db.HasTable(t)) return Status::NotFound("table '" + t + "'");
  }

  JoinExecResult result;

  // Filter every base table once.
  std::unordered_map<std::string, std::vector<uint32_t>> filtered;
  for (const std::string& t : query.tables) {
    filtered[t] = FilterIndices(db.table(t), PredicatesFor(query, t));
    result.base_sizes.push_back(filtered[t].size());
  }

  // Columns needed by join steps strictly after step k must be carried in
  // the intermediate. Needed[k] = set of (table, column) pairs where the
  // table joins at step <= k and the column participates in an edge whose
  // other side joins at step > k.
  auto step_of = [&](const std::string& t) -> int {
    for (size_t i = 0; i < query.tables.size(); ++i) {
      if (query.tables[i] == t) return static_cast<int>(i);
    }
    return -1;
  };

  const size_t num_steps = query.tables.size();
  // needed_after[k]: columns of tables joined by step k that later steps
  // will probe against.
  std::vector<std::vector<std::pair<std::string, std::string>>> needed_after(
      num_steps);
  for (const JoinEdge& e : query.joins) {
    int ls = step_of(e.left_table);
    int rs = step_of(e.right_table);
    if (ls < 0 || rs < 0) {
      return Status::InvalidArgument("join edge references table outside "
                                     "query: " +
                                     e.left_table + "/" + e.right_table);
    }
    if (ls == rs) {
      return Status::InvalidArgument("self-join edge on table '" +
                                     e.left_table + "'");
    }
    // The earlier side must stay materialized until the later side joins.
    const std::string& et = ls < rs ? e.left_table : e.right_table;
    const std::string& ec = ls < rs ? e.left_column : e.right_column;
    int from = std::min(ls, rs);
    int until = std::max(ls, rs);
    for (int k = from; k < until; ++k) {
      needed_after[static_cast<size_t>(k)].push_back({et, ec});
    }
  }

  // Bootstrap the intermediate with table 0.
  const Table& t0 = db.table(query.tables[0]);
  const std::vector<uint32_t>& rows0 = filtered[query.tables[0]];
  std::vector<CarriedColumn> carried;
  for (const auto& [tname, cname] : needed_after[0]) {
    if (tname != query.tables[0]) continue;
    if (FindCarried(carried, tname, cname) >= 0) continue;
    const Column& col = t0.ColumnByName(cname);
    CarriedColumn cc{tname, cname, {}};
    cc.values.reserve(rows0.size());
    for (uint32_t r : rows0) cc.values.push_back(col[r]);
    carried.push_back(std::move(cc));
  }
  uint64_t current_size = rows0.size();

  for (size_t step = 1; step < num_steps; ++step) {
    const std::string& tname = query.tables[step];
    const Table& table = db.table(tname);
    const std::vector<uint32_t>& rows = filtered[tname];

    // Edges connecting this table to the already-joined prefix.
    std::vector<std::string> prefix(query.tables.begin(),
                                    query.tables.begin() +
                                        static_cast<long>(step));
    std::vector<JoinEdge> edges;
    for (const JoinEdge& e : query.joins) {
      bool lt_new = e.left_table == tname;
      bool rt_new = e.right_table == tname;
      if (lt_new && Joined(prefix, e.right_table)) edges.push_back(e);
      else if (rt_new && Joined(prefix, e.left_table)) edges.push_back(e);
    }
    if (edges.empty()) {
      return Status::InvalidArgument("table '" + tname +
                                     "' is not connected to the join prefix");
    }

    // First edge drives the hash join; the rest are residual filters.
    struct EdgeRef {
      int carried_idx;        // intermediate-side column
      const Column* new_col;  // this table's column
    };
    std::vector<EdgeRef> refs;
    for (const JoinEdge& e : edges) {
      const bool new_is_left = e.left_table == tname;
      const std::string& pt = new_is_left ? e.right_table : e.left_table;
      const std::string& pc = new_is_left ? e.right_column : e.left_column;
      const std::string& nc = new_is_left ? e.left_column : e.right_column;
      int ci = FindCarried(carried, pt, pc);
      if (ci < 0) {
        return Status::Internal("column " + pt + "." + pc +
                                " missing from intermediate");
      }
      refs.push_back({ci, &table.ColumnByName(nc)});
    }

    // Build hash table on the new table's side of the first edge.
    std::unordered_map<int64_t, std::vector<uint32_t>> hash;
    hash.reserve(rows.size() * 2);
    {
      const Column& key_col = *refs[0].new_col;
      for (uint32_t r : rows) {
        hash[static_cast<int64_t>(key_col[r])].push_back(r);
      }
    }

    const bool is_last = step + 1 == num_steps;

    // Columns to carry forward after this step.
    std::vector<CarriedColumn> next_carried;
    // (source: -1 => from new table at matched row; >= 0 => carried idx)
    struct OutCol {
      int from_carried;          // index into `carried`, or -1
      const Column* from_table;  // new table column if from_carried < 0
    };
    std::vector<OutCol> out_sources;
    if (!is_last) {
      for (const auto& [nt, nc] : needed_after[step]) {
        if (FindCarried(next_carried, nt, nc) >= 0) continue;
        if (nt == tname) {
          next_carried.push_back({nt, nc, {}});
          out_sources.push_back({-1, &table.ColumnByName(nc)});
        } else {
          int ci = FindCarried(carried, nt, nc);
          if (ci < 0) {
            return Status::Internal("column " + nt + "." + nc +
                                    " missing from intermediate");
          }
          next_carried.push_back({nt, nc, {}});
          out_sources.push_back({ci, nullptr});
        }
      }
    }

    const std::vector<double>& probe_keys =
        carried[static_cast<size_t>(refs[0].carried_idx)].values;
    uint64_t out_size = 0;
    for (uint64_t i = 0; i < current_size; ++i) {
      auto it = hash.find(static_cast<int64_t>(probe_keys[i]));
      if (it == hash.end()) continue;
      for (uint32_t r : it->second) {
        // Residual equality filters for additional edges.
        bool ok = true;
        for (size_t e = 1; e < refs.size(); ++e) {
          const double lhs =
              carried[static_cast<size_t>(refs[e].carried_idx)].values[i];
          if (lhs != (*refs[e].new_col)[r]) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        ++out_size;
        if (out_size > max_intermediate) {
          return Status::OutOfRange("intermediate result exceeded cap");
        }
        if (!is_last) {
          for (size_t oc = 0; oc < out_sources.size(); ++oc) {
            const OutCol& src = out_sources[oc];
            next_carried[oc].values.push_back(
                src.from_carried >= 0
                    ? carried[static_cast<size_t>(src.from_carried)].values[i]
                    : (*src.from_table)[r]);
          }
        }
      }
    }

    result.intermediate_sizes.push_back(out_size);
    carried = std::move(next_carried);
    current_size = out_size;
    if (current_size == 0 && !is_last) {
      // Empty intermediate: all later steps stay empty.
      for (size_t s = step + 1; s < num_steps; ++s) {
        result.intermediate_sizes.push_back(0);
      }
      break;
    }
  }

  result.cardinality = num_steps == 1 ? current_size
                                      : result.intermediate_sizes.back();
  result.total_work = 0;
  for (uint64_t b : result.base_sizes) result.total_work += b;
  for (uint64_t s : result.intermediate_sizes) result.total_work += s;
  return result;
}

}  // namespace confcard
