// Exact SPJ query evaluation by pipelined hash joins. Used both as the
// ground-truth oracle for join workloads (Figures 3-4) and as the
// "execution engine" of the mini optimizer (Table I), where the
// intermediate-result volume is the runtime proxy.
#ifndef CONFCARD_EXEC_JOIN_H_
#define CONFCARD_EXEC_JOIN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/multitable.h"
#include "query/join_query.h"

namespace confcard {

/// Result of executing a join query.
struct JoinExecResult {
  /// Exact COUNT(*) of the join.
  uint64_t cardinality = 0;
  /// Size of the filtered base relation for each table, in join order.
  std::vector<uint64_t> base_sizes;
  /// Size of the intermediate relation after each join step (the last
  /// entry equals `cardinality`).
  std::vector<uint64_t> intermediate_sizes;
  /// Total tuples that flowed through the pipeline: sum of base sizes
  /// (build/scan work) plus intermediate sizes (probe output). This is
  /// the cost proxy the optimizer experiment reports as "runtime".
  uint64_t total_work = 0;
};

/// Executes `query` over `db`, joining `query.tables` left to right.
/// Each table after the first must be connected by at least one join
/// edge to the tables already joined. Fails if the join graph is
/// disconnected or an intermediate exceeds `max_intermediate` rows
/// (guarding against runaway cross products).
Result<JoinExecResult> ExecuteJoin(const Database& db, const JoinQuery& query,
                                   uint64_t max_intermediate = 200'000'000);

}  // namespace confcard

#endif  // CONFCARD_EXEC_JOIN_H_
