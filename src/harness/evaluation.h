// Prediction-interval evaluation: per-query records and the aggregate
// metrics the paper's figures are judged by (empirical coverage, interval
// widths normalized to selectivity, timing).
#ifndef CONFCARD_HARNESS_EVALUATION_H_
#define CONFCARD_HARNESS_EVALUATION_H_

#include <string>
#include <vector>

#include "conformal/interval.h"

namespace confcard {

/// One test query's PI outcome (cardinalities in tuples; intervals
/// already clipped to [0, N]).
struct PiRow {
  double truth = 0.0;
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;

  bool covered() const { return truth >= lo && truth <= hi; }
  double width() const { return hi - lo; }
};

/// Aggregate outcome of one (model, PI method) pair on a test workload.
struct MethodResult {
  std::string model;
  std::string method;
  double alpha = 0.1;

  double coverage = 0.0;          // fraction of rows covered
  double mean_width_sel = 0.0;    // mean width / N
  double median_width_sel = 0.0;  // median width / N
  double p90_width_sel = 0.0;
  double mean_qerror = 0.0;       // model accuracy context (median q-error)
  /// Mean Winkler (interval) score normalized by N: width plus a
  /// (2/alpha) * distance penalty for misses. A proper scoring rule —
  /// lower is better — that trades coverage against width on one axis,
  /// so methods with different coverage become directly comparable.
  double winkler_sel = 0.0;

  double prep_millis = 0.0;   // extra training + calibration time
  double infer_micros = 0.0;  // per-query PI inference time

  std::vector<PiRow> rows;
};

/// Fills the aggregate fields of `result` from `result.rows` (widths
/// normalized by `num_rows`).
void FinalizeMethodResult(MethodResult* result, double num_rows);

}  // namespace confcard

#endif  // CONFCARD_HARNESS_EVALUATION_H_
