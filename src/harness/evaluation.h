// Prediction-interval evaluation: per-query records and the aggregate
// metrics the paper's figures are judged by (empirical coverage, interval
// widths normalized to selectivity, timing).
#ifndef CONFCARD_HARNESS_EVALUATION_H_
#define CONFCARD_HARNESS_EVALUATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "conformal/interval.h"
#include "obs/trace.h"

namespace confcard {

/// One test query's PI outcome (cardinalities in tuples; intervals
/// already clipped to [0, N]).
struct PiRow {
  double truth = 0.0;
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  /// Per-query PI inference latency. Stamped only while the event log is
  /// armed (see EventClock); 0 otherwise, so the hot loop stays free of
  /// clock syscalls in normal runs.
  double latency_us = 0.0;
  /// True when the estimate came from a guard fallback (or quarantine)
  /// and the interval was conservatively inflated. Degraded rows are
  /// aggregated separately so healthy coverage stays unpolluted.
  bool degraded = false;

  bool covered() const { return truth >= lo && truth <= hi; }
  double width() const { return hi - lo; }
};

/// Aggregate outcome of one (model, PI method) pair on a test workload.
struct MethodResult {
  std::string model;
  std::string method;
  double alpha = 0.1;
  /// Per-process ordinal assigned by FinalizeMethodResult (1, 2, ...).
  /// Disambiguates repeated (model, method) pairs — ablations rerun the
  /// same method at several alphas, and some benches rename `method`
  /// after finalization — in both gauge names
  /// ("harness.coverage.<run_seq>.<model>.<method>") and the `run` field
  /// of per-query events. Deterministic across identical runs.
  uint64_t run_seq = 0;

  double coverage = 0.0;          // fraction of rows covered
  double mean_width_sel = 0.0;    // mean width / N
  double median_width_sel = 0.0;  // median width / N
  double p90_width_sel = 0.0;
  double mean_qerror = 0.0;       // model accuracy context (median q-error)
  /// Mean Winkler (interval) score normalized by N: width plus a
  /// (2/alpha) * distance penalty for misses. A proper scoring rule —
  /// lower is better — that trades coverage against width on one axis,
  /// so methods with different coverage become directly comparable.
  double winkler_sel = 0.0;

  double prep_millis = 0.0;   // extra training + calibration time
  double infer_micros = 0.0;  // per-query PI inference time

  /// Degraded-row accounting (guarded runs only; both stay 0 otherwise).
  /// When any row is degraded, the aggregates above are computed over
  /// healthy rows only; the degraded slice is summarized here.
  uint64_t num_degraded = 0;
  double coverage_degraded = 0.0;

  std::vector<PiRow> rows;
};

/// Fills the aggregate fields of `result` from `result.rows` (widths
/// normalized by `num_rows`), assigns `result->run_seq`, publishes
/// "harness.coverage.<seq>.<model>.<method>" /
/// "harness.width_sel.<seq>.<model>.<method>" gauges, and — when
/// CONFCARD_EVENTS_JSONL is set — streams one per-query event record per
/// row to the event log.
void FinalizeMethodResult(MethodResult* result, double num_rows);

/// Clock for per-query latency stamping that is free when the event log
/// is disarmed: NowUs() returns 0 without touching the clock, so
/// `row.latency_us = clock.NowUs() - t0` costs one predictable branch in
/// normal runs. Construct once per inference loop, outside it.
class EventClock {
 public:
  EventClock();
  double NowUs() const;

 private:
  bool enabled_;
};

/// RAII timer for the prep phase of one method run (model-extra training
/// plus calibration): opens a "prep" trace span and, on destruction,
/// fills result->prep_millis and the "harness.prep_us" histogram.
class PrepTimer {
 public:
  explicit PrepTimer(MethodResult* result);

 private:
  obs::ScopedTimer timer_;
};

/// RAII timer for the per-query inference loop: opens an "infer" trace
/// span; on destruction fills result->infer_micros (per query over
/// `num_queries`) and the "harness.infer_us" histogram.
class InferTimer {
 public:
  InferTimer(MethodResult* result, size_t num_queries);
  ~InferTimer();

 private:
  obs::ScopedTimer timer_;
  MethodResult* result_;
  size_t num_queries_;
};

/// Interval clipping with per-method accounting: behaves like
/// ClipToCardinality (or the joins' lower-bound-only clip) and bumps
/// "conformal.clip.<method>" whenever clipping moved a bound, plus the
/// matching ".total" counter per interval seen.
class ClipCounter {
 public:
  explicit ClipCounter(const std::string& method);

  /// ClipToCardinality(iv, num_rows), counted.
  Interval Clip(Interval iv, double num_rows);
  /// max(lo, 0) only — join cardinalities have no table-size cap.
  Interval ClipNonNegative(Interval iv);

 private:
  obs::Counter& clipped_;
  obs::Counter& total_;
};

}  // namespace confcard

#endif  // CONFCARD_HARNESS_EVALUATION_H_
