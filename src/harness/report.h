// Plain-text reporting for the experiment binaries: aligned summary
// tables (one row per model x PI-method) and per-query series dumps that
// regenerate the paper's figure data.
#ifndef CONFCARD_HARNESS_REPORT_H_
#define CONFCARD_HARNESS_REPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "harness/evaluation.h"

namespace confcard {

/// Prints a header line for an experiment.
void PrintExperimentHeader(const std::string& id, const std::string& title);

/// Prints the aggregate table: coverage, width stats, timings.
void PrintMethodTable(const std::vector<MethodResult>& results);

/// Prints up to `max_points` per-query rows (selectivity, truth, PI
/// bounds), ordered by true selectivity — the series behind the paper's
/// scatter plots. Values are normalized selectivities.
void PrintSeries(const MethodResult& result, double num_rows,
                 size_t max_points = 20);

/// Writes the full series of `result` as CSV (query index, truth,
/// estimate, lo, hi in tuples) for offline plotting. Prints the path on
/// success; returns the underlying I/O error otherwise so callers can
/// surface partially written figure data instead of silently dropping it.
Status WriteSeriesCsv(const std::string& path, const MethodResult& result);

}  // namespace confcard

#endif  // CONFCARD_HARNESS_REPORT_H_
