#include "harness/join_harness.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>
#include <string>

#include "common/check.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "conformal/cqr.h"
#include "conformal/jackknife.h"
#include "conformal/locally_weighted.h"
#include "conformal/split.h"
#include "conformal/validate.h"
#include "obs/metrics.h"

namespace confcard {
namespace {

// FNV-1a over the join-workload content (tables, join edges, scoped
// predicates, labels) — cache identity for workloads the harness does
// not own. Mirrors the single-table HashWorkload.
uint64_t HashJoinWorkload(const JoinWorkload& workload) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  auto mix_str = [&h](const std::string& s) {
    for (const char ch : s) {
      h ^= static_cast<unsigned char>(ch);
      h *= 0x100000001b3ull;
    }
    h ^= 0xFFull;  // terminator so "ab","c" != "a","bc"
    h *= 0x100000001b3ull;
  };
  mix(workload.size());
  for (const LabeledJoinQuery& lq : workload) {
    mix(lq.query.tables.size());
    for (const std::string& t : lq.query.tables) mix_str(t);
    mix(lq.query.joins.size());
    for (const JoinEdge& e : lq.query.joins) {
      mix_str(e.left_table);
      mix_str(e.left_column);
      mix_str(e.right_table);
      mix_str(e.right_column);
    }
    mix(lq.query.predicates.size());
    for (const TablePredicate& tp : lq.query.predicates) {
      mix_str(tp.table);
      mix(static_cast<uint64_t>(static_cast<int64_t>(tp.pred.column)));
      mix(static_cast<uint64_t>(tp.pred.op));
      mix(std::bit_cast<uint64_t>(tp.pred.lo));
      mix(std::bit_cast<uint64_t>(tp.pred.hi));
    }
    mix(std::bit_cast<uint64_t>(lq.cardinality));
  }
  return h;
}

}  // namespace

JoinHarness::JoinHarness(const Database& db, JoinWorkload train,
                         JoinWorkload calib, JoinWorkload test,
                         Options options)
    : db_(&db),
      train_(std::move(train)),
      calib_(std::move(calib)),
      test_(std::move(test)),
      options_(options),
      scoring_(MakeScoring(options.score)) {
  CONFCARD_CHECK(!calib_.empty());
  CONFCARD_CHECK(!test_.empty());
}

Result<JoinHarness> JoinHarness::Make(const Database& db, JoinWorkload train,
                                      JoinWorkload calib, JoinWorkload test,
                                      Options options) {
  CONFCARD_RETURN_NOT_OK(ValidateAlpha(options.alpha));
  CONFCARD_RETURN_NOT_OK(ValidateFolds(options.jk_folds));
  if (calib.empty()) {
    return Status::InvalidArgument("calibration split is empty");
  }
  if (test.empty()) {
    return Status::InvalidArgument("test split is empty");
  }
  return JoinHarness(db, std::move(train), std::move(calib), std::move(test),
                     options);
}

const std::vector<double>& JoinHarness::Estimates(
    const MscnJoinEstimator& model, const JoinWorkload& wl) const {
  int slot = 3;
  uint64_t content_hash = 0;
  if (&wl == &train_) {
    slot = 0;
  } else if (&wl == &calib_) {
    slot = 1;
  } else if (&wl == &test_) {
    slot = 2;
  } else {
    content_hash = HashJoinWorkload(wl);
  }
  const auto key = std::make_tuple(model.instance_id(), slot, content_hash);
  static obs::Counter& hits =
      obs::Metrics().GetCounter("ce.infer.cache_hits");
  static obs::Counter& misses =
      obs::Metrics().GetCounter("ce.infer.cache_misses");
  auto it = estimate_cache_.find(key);
  if (it != estimate_cache_.end()) {
    hits.Increment();
    return it->second;
  }
  misses.Increment();
  // Chunks fan out across the pool into pre-sized slots; each chunk runs
  // one batched forward. Inference is const and cache-free, so order and
  // values are scheduling-independent.
  std::vector<JoinQuery> queries(wl.size());
  for (size_t i = 0; i < wl.size(); ++i) queries[i] = wl[i].query;
  std::vector<double> out(wl.size());
  Stopwatch watch;
  // Detail-only sweep span (see single_table.cc): visible on trace
  // timelines and attributing CPU samples when the profiler is armed.
  std::optional<obs::TraceSpan> sweep_span;
  if (obs::DetailSpansEnabled()) {
    sweep_span.emplace("infer.batch");
    sweep_span->SetAttr("queries", static_cast<double>(wl.size()));
  }
  ParallelFor(wl.size(), 0, [&](size_t begin, size_t end) {
    std::optional<obs::TraceSpan> chunk_span;
    if (obs::DetailSpansEnabled()) {
      chunk_span.emplace("infer.batch.chunk");
      chunk_span->SetAttr("begin", static_cast<double>(begin));
      chunk_span->SetAttr("n", static_cast<double>(end - begin));
    }
    model.EstimateBatch(queries.data() + begin, end - begin,
                        out.data() + begin);
  });
  const double elapsed_us = watch.ElapsedMicros();
  if (elapsed_us > 0.0 && !wl.empty()) {
    obs::Metrics()
        .GetGauge("ce.infer.batch_queries_per_sec")
        .Set(static_cast<double>(wl.size()) * 1e6 / elapsed_us);
  }
  return estimate_cache_.emplace(key, std::move(out)).first->second;
}

std::vector<double> JoinHarness::Truths(const JoinWorkload& wl) const {
  std::vector<double> out;
  out.reserve(wl.size());
  for (const LabeledJoinQuery& lq : wl) out.push_back(lq.cardinality);
  return out;
}

double JoinHarness::Normalizer() const {
  double max_card = 1.0;
  for (const LabeledJoinQuery& lq : test_) {
    max_card = std::max(max_card, lq.num_rows);
  }
  return max_card;
}

MethodResult JoinHarness::RunScp(const MscnJoinEstimator& model) const {
  MethodResult result;
  result.model = model.name();
  result.method = "s-cp";
  result.alpha = options_.alpha;

  obs::TraceSpan span("harness.join.s-cp");
  SplitConformal scp(scoring_, options_.alpha);
  {
    PrepTimer prep(&result);
    CONFCARD_CHECK(scp.Calibrate(Estimates(model, calib_), Truths(calib_))
                       .ok());
  }

  std::vector<double> test_est = Estimates(model, test_);
  const double norm = Normalizer();
  ClipCounter clip(result.method);
  {
    InferTimer infer(&result, test_.size());
    EventClock clock;
    for (size_t i = 0; i < test_.size(); ++i) {
      const double t0 = clock.NowUs();
      Interval iv = clip.ClipNonNegative(scp.Predict(test_est[i]));
      result.rows.push_back({test_[i].cardinality, test_est[i], iv.lo,
                             iv.hi, clock.NowUs() - t0});
    }
  }
  FinalizeMethodResult(&result, norm);
  return result;
}

MethodResult JoinHarness::RunLwScp(const MscnJoinEstimator& model) const {
  MethodResult result;
  result.model = model.name();
  result.method = "lw-s-cp";
  result.alpha = options_.alpha;

  auto features = [&](const JoinWorkload& wl) {
    std::vector<std::vector<float>> out(wl.size());
    ParallelFor(wl.size(), 0, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        out[i] = model.FlatFeatures(wl[i].query);
      }
    });
    return out;
  };

  obs::TraceSpan span("harness.join.lw-s-cp");
  LocallyWeightedConformal::Options opts;
  opts.alpha = options_.alpha;
  opts.gbdt = options_.gbdt;
  LocallyWeightedConformal lw(opts);
  {
    PrepTimer prep(&result);
    CONFCARD_CHECK(lw.FitDifficulty(features(train_),
                                    Estimates(model, train_),
                                    Truths(train_))
                       .ok());
    CONFCARD_CHECK(
        lw.Calibrate(features(calib_), Estimates(model, calib_),
                     Truths(calib_))
            .ok());
  }

  std::vector<double> test_est = Estimates(model, test_);
  std::vector<std::vector<float>> test_feat = features(test_);
  const double norm = Normalizer();
  ClipCounter clip(result.method);
  {
    InferTimer infer(&result, test_.size());
    EventClock clock;
    for (size_t i = 0; i < test_.size(); ++i) {
      const double t0 = clock.NowUs();
      Interval iv =
          clip.ClipNonNegative(lw.Predict(test_est[i], test_feat[i]));
      result.rows.push_back({test_[i].cardinality, test_est[i], iv.lo,
                             iv.hi, clock.NowUs() - t0});
    }
  }
  FinalizeMethodResult(&result, norm);
  return result;
}

MethodResult JoinHarness::RunCqr(const MscnJoinEstimator& prototype) const {
  MethodResult result;
  result.model = prototype.name();
  result.method = "cqr";
  result.alpha = options_.alpha;

  obs::TraceSpan span("harness.join.cqr");
  ConformalizedQuantileRegression cqr(options_.alpha);
  std::unique_ptr<MscnJoinEstimator> lo_model, hi_model;
  {
    PrepTimer prep(&result);
    lo_model = prototype.CloneArchitecture(2101);
    lo_model->SetLoss(LossSpec::Pinball(cqr.lower_tau()));
    hi_model = prototype.CloneArchitecture(2203);
    hi_model->SetLoss(LossSpec::Pinball(cqr.upper_tau()));
    // Quantile heads train concurrently; the upper head trains last in a
    // serial run, so its telemetry is republished after the join.
    MscnJoinEstimator* heads[2] = {lo_model.get(), hi_model.get()};
    ParallelFor(2, 1, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        CONFCARD_CHECK(heads[i]->Train(*db_, train_).ok());
      }
    });
    hi_model->RepublishTrainingTelemetry();
    CONFCARD_CHECK(cqr.Calibrate(Estimates(*lo_model, calib_),
                                 Estimates(*hi_model, calib_),
                                 Truths(calib_))
                       .ok());
  }

  std::vector<double> lo_test = Estimates(*lo_model, test_);
  std::vector<double> hi_test = Estimates(*hi_model, test_);
  const double norm = Normalizer();
  ClipCounter clip(result.method);
  {
    InferTimer infer(&result, test_.size());
    EventClock clock;
    for (size_t i = 0; i < test_.size(); ++i) {
      const double t0 = clock.NowUs();
      Interval iv = clip.ClipNonNegative(cqr.Predict(lo_test[i], hi_test[i]));
      const double center = 0.5 * (lo_test[i] + hi_test[i]);
      result.rows.push_back({test_[i].cardinality, center, iv.lo, iv.hi,
                             clock.NowUs() - t0});
    }
  }
  FinalizeMethodResult(&result, norm);
  return result;
}

MethodResult JoinHarness::RunJkCv(const MscnJoinEstimator& prototype,
                                  const MscnJoinEstimator& full_model) const {
  MethodResult result;
  result.model = full_model.name();
  result.method = "jk-cv+";
  result.alpha = options_.alpha;

  JoinWorkload all = train_;
  all.insert(all.end(), calib_.begin(), calib_.end());
  const int k = options_.jk_folds;

  obs::TraceSpan span("harness.join.jk-cv+");
  std::vector<std::unique_ptr<MscnJoinEstimator>> fold_models;
  JackknifeCvPlus jk(scoring_, options_.alpha);
  {
    PrepTimer prep(&result);
    std::vector<int> fold_of = AssignFolds(all.size(), k, options_.seed);
    // Fold models train concurrently (clones created serially for
    // deterministic instance ids; each fold seeded by 3000 + f).
    fold_models.reserve(static_cast<size_t>(k));
    for (int f = 0; f < k; ++f) {
      fold_models.push_back(
          prototype.CloneArchitecture(3000 + static_cast<uint64_t>(f)));
    }
    ParallelFor(static_cast<size_t>(k), 1, [&](size_t begin, size_t end) {
      for (size_t f = begin; f < end; ++f) {
        // Detail-only per-fold span (see single_table.cc).
        std::optional<obs::TraceSpan> fold_span;
        if (obs::DetailSpansEnabled()) {
          fold_span.emplace("fold.train");
          fold_span->SetAttr("fold", static_cast<double>(f));
        }
        JoinWorkload fold_train;
        fold_train.reserve(all.size());
        for (size_t i = 0; i < all.size(); ++i) {
          if (fold_of[i] != static_cast<int>(f)) fold_train.push_back(all[i]);
        }
        CONFCARD_CHECK(fold_models[f]->Train(*db_, fold_train).ok());
      }
    });
    // A serial run trains fold k-1 last; restore its telemetry.
    fold_models.back()->RepublishTrainingTelemetry();
    std::vector<double> oof(all.size()), truths(all.size());
    ParallelFor(all.size(), 0, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        oof[i] = fold_models[static_cast<size_t>(fold_of[i])]
                     ->EstimateCardinality(all[i].query);
        truths[i] = all[i].cardinality;
      }
    });
    CONFCARD_CHECK(jk.Calibrate(oof, truths, fold_of, k).ok());
  }

  std::vector<double> full_est = Estimates(full_model, test_);
  const double norm = Normalizer();
  ClipCounter clip(result.method);
  {
    InferTimer infer(&result, test_.size());
    EventClock clock;
    // Each test query runs all K fold models; queries fan out with one
    // scratch fold_est per chunk, writing rows into pre-sized slots.
    result.rows.resize(test_.size());
    ParallelFor(test_.size(), 0, [&](size_t begin, size_t end) {
      std::vector<double> fold_est(static_cast<size_t>(k));
      for (size_t i = begin; i < end; ++i) {
        const double t0 = clock.NowUs();
        for (int f = 0; f < k; ++f) {
          fold_est[static_cast<size_t>(f)] =
              fold_models[static_cast<size_t>(f)]->EstimateCardinality(
                  test_[i].query);
        }
        Interval iv = clip.ClipNonNegative(jk.Predict(fold_est, full_est[i]));
        result.rows[i] = {test_[i].cardinality, full_est[i], iv.lo, iv.hi,
                          clock.NowUs() - t0};
      }
    });
  }
  FinalizeMethodResult(&result, norm);
  return result;
}

}  // namespace confcard
