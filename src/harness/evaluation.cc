#include "harness/evaluation.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace confcard {

void FinalizeMethodResult(MethodResult* result, double num_rows) {
  if (result->rows.empty()) return;
  size_t covered = 0;
  std::vector<double> widths, qerrs;
  widths.reserve(result->rows.size());
  qerrs.reserve(result->rows.size());
  double winkler = 0.0;
  const double penalty = 2.0 / std::max(result->alpha, 1e-9);
  for (const PiRow& r : result->rows) {
    covered += r.covered() ? 1 : 0;
    widths.push_back(r.width() / num_rows);
    const double e = std::max(r.estimate, 1.0);
    const double t = std::max(r.truth, 1.0);
    qerrs.push_back(std::max(e / t, t / e));
    double score = r.width();
    if (r.truth < r.lo) score += penalty * (r.lo - r.truth);
    if (r.truth > r.hi) score += penalty * (r.truth - r.hi);
    winkler += score / num_rows;
  }
  result->winkler_sel = winkler / static_cast<double>(result->rows.size());
  result->coverage =
      static_cast<double>(covered) / static_cast<double>(result->rows.size());
  result->mean_width_sel = Mean(widths);
  result->median_width_sel = Percentile(widths, 50.0);
  result->p90_width_sel = Percentile(widths, 90.0);
  result->mean_qerror = Percentile(qerrs, 50.0);
}

}  // namespace confcard
