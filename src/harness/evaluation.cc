#include "harness/evaluation.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/stats.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace confcard {

EventClock::EventClock() : enabled_(obs::EventLog::Instance().enabled()) {}

double EventClock::NowUs() const {
  return enabled_ ? obs::TraceNowMicros() : 0.0;
}

void FinalizeMethodResult(MethodResult* result, double num_rows) {
  if (result->rows.empty()) return;
  // Degraded rows (guard fallbacks with inflated intervals) are kept out
  // of the headline aggregates so a fault sweep cannot flatter coverage
  // with intentionally-wide intervals; they get their own slice below.
  // With no degraded rows this loop is the historical all-rows pass.
  size_t covered = 0;
  size_t healthy = 0;
  size_t degraded_covered = 0;
  std::vector<double> widths, qerrs;
  widths.reserve(result->rows.size());
  qerrs.reserve(result->rows.size());
  double winkler = 0.0;
  const double penalty = 2.0 / std::max(result->alpha, 1e-9);
  for (const PiRow& r : result->rows) {
    if (r.degraded) {
      degraded_covered += r.covered() ? 1 : 0;
      continue;
    }
    ++healthy;
    covered += r.covered() ? 1 : 0;
    widths.push_back(r.width() / num_rows);
    const double e = std::max(r.estimate, 1.0);
    const double t = std::max(r.truth, 1.0);
    qerrs.push_back(std::max(e / t, t / e));
    double score = r.width();
    if (r.truth < r.lo) score += penalty * (r.lo - r.truth);
    if (r.truth > r.hi) score += penalty * (r.truth - r.hi);
    winkler += score / num_rows;
  }
  result->num_degraded = result->rows.size() - healthy;
  result->coverage_degraded =
      result->num_degraded == 0
          ? 0.0
          : static_cast<double>(degraded_covered) /
                static_cast<double>(result->num_degraded);
  if (healthy > 0) {
    result->winkler_sel = winkler / static_cast<double>(healthy);
    result->coverage =
        static_cast<double>(covered) / static_cast<double>(healthy);
    result->mean_width_sel = Mean(widths);
    result->median_width_sel = Percentile(widths, 50.0);
    result->p90_width_sel = Percentile(widths, 90.0);
    result->mean_qerror = Percentile(qerrs, 50.0);
  }

  // Per-process method-run ordinal: benches finalize in a deterministic
  // order, so the same run reproduces the same sequence and obsdiff can
  // align per-run gauges by name across two runs.
  static std::atomic<uint64_t> g_run_seq{0};
  result->run_seq = g_run_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::string suffix = "." + std::to_string(result->run_seq) + "." +
                             result->model + "." + result->method;
  obs::Metrics().GetGauge("harness.coverage" + suffix).Set(result->coverage);
  obs::Metrics()
      .GetGauge("harness.width_sel" + suffix)
      .Set(result->mean_width_sel);
  if (result->num_degraded > 0) {
    // Registered only when degradation happened, so healthy runs keep a
    // byte-identical metric namespace (the obsdiff gate relies on it).
    obs::Metrics()
        .GetGauge("harness.degraded" + suffix)
        .Set(static_cast<double>(result->num_degraded));
    obs::Metrics()
        .GetGauge("harness.coverage_degraded" + suffix)
        .Set(result->coverage_degraded);
  }

  obs::EventLog& elog = obs::EventLog::Instance();
  if (elog.enabled()) {
    // One batch in query-index order under a single lock acquisition, so
    // a method's events are contiguous even with concurrent appenders.
    std::vector<obs::QueryEvent> events(result->rows.size());
    for (size_t i = 0; i < result->rows.size(); ++i) {
      const PiRow& r = result->rows[i];
      obs::QueryEvent& e = events[i];
      e.run_seq = result->run_seq;
      e.query_id = i;
      e.model = result->model;
      e.method = result->method;
      e.alpha = result->alpha;
      e.estimate = r.estimate;
      e.lo = r.lo;
      e.hi = r.hi;
      e.truth = r.truth;
      e.latency_us = r.latency_us;
      e.degraded = r.degraded;
    }
    elog.AppendAll(events);
  }
}

PrepTimer::PrepTimer(MethodResult* result)
    : timer_("prep", &result->prep_millis,
             &obs::Metrics().GetHistogram("harness.prep_us")) {}

InferTimer::InferTimer(MethodResult* result, size_t num_queries)
    : timer_("infer", nullptr,
             &obs::Metrics().GetHistogram("harness.infer_us"),
             static_cast<double>(std::max<size_t>(num_queries, 1))) {
  // infer_micros is the per-query average; route the span's elapsed
  // micros through the divisor and mirror it into the result afterwards.
  result_ = result;
  num_queries_ = std::max<size_t>(num_queries, 1);
}

InferTimer::~InferTimer() {
  result_->infer_micros =
      timer_.span().ElapsedMicros() / static_cast<double>(num_queries_);
}

ClipCounter::ClipCounter(const std::string& method)
    : clipped_(obs::Metrics().GetCounter("conformal.clip." + method)),
      total_(obs::Metrics().GetCounter("conformal.clip." + method +
                                       ".total")) {}

Interval ClipCounter::Clip(Interval iv, double num_rows) {
  const Interval out = ClipToCardinality(iv, num_rows);
  total_.Increment();
  if (out.lo != iv.lo || out.hi != iv.hi) clipped_.Increment();
  return out;
}

Interval ClipCounter::ClipNonNegative(Interval iv) {
  total_.Increment();
  if (iv.lo < 0.0) {
    iv.lo = 0.0;
    clipped_.Increment();
  }
  return iv;
}

}  // namespace confcard
