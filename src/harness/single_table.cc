#include "harness/single_table.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "conformal/cqr.h"
#include "conformal/jackknife.h"
#include "conformal/locally_weighted.h"
#include "conformal/split.h"
#include "conformal/validate.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/validate.h"

namespace confcard {
namespace {

// Variance-based difficulty floored away from zero.
double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

// FNV-1a over the workload content (predicates + labels): the cache
// identity for workloads the harness does not own.
uint64_t HashWorkload(const Workload& workload) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(workload.size());
  for (const LabeledQuery& lq : workload) {
    mix(lq.query.predicates.size());
    for (const Predicate& p : lq.query.predicates) {
      mix(static_cast<uint64_t>(static_cast<int64_t>(p.column)));
      mix(static_cast<uint64_t>(p.op));
      mix(std::bit_cast<uint64_t>(p.lo));
      mix(std::bit_cast<uint64_t>(p.hi));
    }
    mix(std::bit_cast<uint64_t>(lq.cardinality));
  }
  return h;
}

}  // namespace

SingleTableHarness::SingleTableHarness(const Table& table, Workload train,
                                       Workload calib, Workload test,
                                       Options options)
    : table_(&table),
      train_(std::move(train)),
      calib_(std::move(calib)),
      test_(std::move(test)),
      options_(options),
      scoring_(MakeScoring(options.score)),
      featurizer_(std::make_unique<FlatQueryFeaturizer>(table)),
      num_rows_(static_cast<double>(table.num_rows())) {
  CONFCARD_CHECK(!calib_.empty());
  CONFCARD_CHECK(!test_.empty());
}

Result<SingleTableHarness> SingleTableHarness::Make(const Table& table,
                                                    Workload train,
                                                    Workload calib,
                                                    Workload test,
                                                    Options options) {
  CONFCARD_RETURN_NOT_OK(ValidateAlpha(options.alpha));
  CONFCARD_RETURN_NOT_OK(ValidateFolds(options.jk_folds));
  if (!(options.degraded_inflation >= 1.0)) {
    return Status::InvalidArgument(
        "degraded_inflation must be >= 1 (intervals only widen)");
  }
  if (calib.empty()) {
    return Status::InvalidArgument("calibration split is empty");
  }
  if (test.empty()) {
    return Status::InvalidArgument("test split is empty");
  }
  const size_t cols = table.num_columns();
  CONFCARD_RETURN_NOT_OK(ValidateWorkload(train, cols));
  CONFCARD_RETURN_NOT_OK(ValidateWorkload(calib, cols));
  CONFCARD_RETURN_NOT_OK(ValidateWorkload(test, cols));
  return SingleTableHarness(table, std::move(train), std::move(calib),
                            std::move(test), options);
}

const std::vector<double>& SingleTableHarness::Estimates(
    const CardinalityEstimator& model, const Workload& workload) const {
  // Harness-owned splits are identified by member (slot 0-2); any other
  // workload by content hash, so the key never depends on a caller's
  // buffer address.
  int slot = 3;
  uint64_t content_hash = 0;
  if (&workload == &train_) {
    slot = 0;
  } else if (&workload == &calib_) {
    slot = 1;
  } else if (&workload == &test_) {
    slot = 2;
  } else {
    content_hash = HashWorkload(workload);
  }
  const auto key = std::make_tuple(model.instance_id(), slot, content_hash);
  static obs::Counter& hits =
      obs::Metrics().GetCounter("ce.infer.cache_hits");
  static obs::Counter& misses =
      obs::Metrics().GetCounter("ce.infer.cache_misses");
  auto it = estimate_cache_.find(key);
  if (it != estimate_cache_.end()) {
    hits.Increment();
    return it->second;
  }
  misses.Increment();
  // Chunks of queries fan out across the pool and each chunk runs one
  // batched forward (inference paths are const and cache-free); each
  // slot is written exactly once, keeping output order
  // scheduling-independent, and EstimateBatch is bit-identical to the
  // per-query loop.
  std::vector<Query> queries(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    queries[i] = workload[i].query;
  }
  std::vector<double> out(workload.size());
  Stopwatch watch;
  // Detail-only: when a Chrome trace export or the sampling profiler is
  // armed, the batched sweep gets its own span (and each worker chunk a
  // per-thread child) so inference scheduling is visually inspectable
  // and CPU samples attribute to the sweep. Gated to keep the artifact
  // span tree unchanged on plain runs.
  std::optional<obs::TraceSpan> sweep_span;
  if (obs::DetailSpansEnabled()) {
    sweep_span.emplace("infer.batch");
    sweep_span->SetAttr("queries", static_cast<double>(workload.size()));
  }
  ParallelFor(workload.size(), 0, [&](size_t begin, size_t end) {
    std::optional<obs::TraceSpan> chunk_span;
    if (obs::DetailSpansEnabled()) {
      chunk_span.emplace("infer.batch.chunk");
      chunk_span->SetAttr("begin", static_cast<double>(begin));
      chunk_span->SetAttr("n", static_cast<double>(end - begin));
    }
    model.EstimateBatch(queries.data() + begin, end - begin,
                        out.data() + begin);
  });
  const double elapsed_us = watch.ElapsedMicros();
  if (elapsed_us > 0.0 && !workload.empty()) {
    obs::Metrics()
        .GetGauge("ce.infer.batch_queries_per_sec")
        .Set(static_cast<double>(workload.size()) * 1e6 / elapsed_us);
  }
  return estimate_cache_.emplace(key, std::move(out)).first->second;
}

std::vector<std::vector<float>> SingleTableHarness::Features(
    const Workload& workload) const {
  std::vector<std::vector<float>> out(workload.size());
  ParallelFor(workload.size(), 0, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = featurizer_->Featurize(workload[i].query);
    }
  });
  return out;
}

std::vector<double> SingleTableHarness::Truths(
    const Workload& workload) const {
  std::vector<double> out;
  out.reserve(workload.size());
  for (const LabeledQuery& lq : workload) out.push_back(lq.cardinality);
  return out;
}

MethodResult SingleTableHarness::MakeResult(
    const CardinalityEstimator& model, const std::string& method) const {
  MethodResult r;
  r.model = model.name();
  r.method = method;
  r.alpha = options_.alpha;
  return r;
}

MethodResult SingleTableHarness::RunScp(
    const CardinalityEstimator& model) const {
  MethodResult result = MakeResult(model, "s-cp");
  obs::TraceSpan span("harness.s-cp");
  SplitConformal scp(scoring_, options_.alpha);
  {
    PrepTimer prep(&result);
    std::vector<double> calib_est = Estimates(model, calib_);
    CONFCARD_CHECK(scp.Calibrate(calib_est, Truths(calib_)).ok());
  }

  std::vector<double> test_est = Estimates(model, test_);
  ClipCounter clip(result.method);
  {
    InferTimer infer(&result, test_.size());
    EventClock clock;
    for (size_t i = 0; i < test_.size(); ++i) {
      const double t0 = clock.NowUs();
      Interval iv = clip.Clip(scp.Predict(test_est[i]), num_rows_);
      result.rows.push_back({test_[i].cardinality, test_est[i], iv.lo,
                             iv.hi, clock.NowUs() - t0});
    }
  }
  FinalizeMethodResult(&result, num_rows_);
  return result;
}

MethodResult SingleTableHarness::RunScpGuarded(
    const GuardedEstimator& guard) const {
  MethodResult result = MakeResult(guard, "s-cp");
  obs::TraceSpan span("harness.s-cp");
  SplitConformal scp(scoring_, options_.alpha);

  // Guarded estimates carry per-query degradation flags, so they bypass
  // the plain Estimates() cache. The chunking matches Estimates() so the
  // primary sees identical batches (bit-identity with RunScp when no
  // faults are armed).
  auto guarded_estimates = [&](const Workload& wl) {
    std::vector<Query> queries(wl.size());
    for (size_t i = 0; i < wl.size(); ++i) queries[i] = wl[i].query;
    std::vector<GuardedEstimate> out(wl.size());
    // One ordering window per sweep, allocated at this serial point:
    // guard records staged by concurrent chunks merge into the event log
    // keyed by query index, so the log order is identical at any thread
    // count.
    const uint64_t sweep = obs::EventLog::Instance().NextOrderWindow();
    ParallelFor(wl.size(), 0, [&](size_t begin, size_t end) {
      guard.EstimateBatchGuarded(queries.data() + begin, end - begin,
                                 out.data() + begin,
                                 obs::EventLog::OrderKey(sweep, begin));
    });
    return out;
  };

  std::vector<GuardedEstimate> calib_g, test_g;
  {
    PrepTimer prep(&result);
    calib_g = guarded_estimates(calib_);
    // Calibrate on healthy answers only: a fallback's residuals say
    // nothing about the primary's error distribution, and folding them
    // in would distort delta for every healthy query.
    std::vector<double> est, truth;
    est.reserve(calib_.size());
    truth.reserve(calib_.size());
    for (size_t i = 0; i < calib_.size(); ++i) {
      if (calib_g[i].degraded) continue;
      est.push_back(calib_g[i].value);
      truth.push_back(calib_[i].cardinality);
    }
    CONFCARD_CHECK_MSG(!est.empty(),
                       "guarded s-cp: no healthy calibration answers");
    CONFCARD_CHECK(scp.Calibrate(est, truth).ok());
  }

  test_g = guarded_estimates(test_);
  const double inflated_delta = scp.delta() * options_.degraded_inflation;
  ClipCounter clip(result.method);
  {
    InferTimer infer(&result, test_.size());
    EventClock clock;
    for (size_t i = 0; i < test_.size(); ++i) {
      const double t0 = clock.NowUs();
      const double est = test_g[i].value;
      Interval iv = test_g[i].degraded
                        ? scoring_->Invert(est, inflated_delta)
                        : scp.Predict(est);
      iv = clip.Clip(iv, num_rows_);
      result.rows.push_back({test_[i].cardinality, est, iv.lo, iv.hi,
                             clock.NowUs() - t0, test_g[i].degraded});
    }
  }
  FinalizeMethodResult(&result, num_rows_);
  return result;
}

MethodResult SingleTableHarness::RunLwScp(
    const CardinalityEstimator& model, DifficultySource source,
    const SupervisedEstimator* prototype) const {
  MethodResult result = MakeResult(model, "lw-s-cp");
  std::vector<double> train_est = Estimates(model, train_);
  std::vector<double> calib_est = Estimates(model, calib_);
  std::vector<double> test_est = Estimates(model, test_);
  const std::vector<double> calib_truth = Truths(calib_);

  if (source == DifficultySource::kGbdtMad) {
    CONFCARD_CHECK_MSG(!train_.empty(),
                       "lw-s-cp(gbdt) needs a training split");
    obs::TraceSpan span("harness.lw-s-cp");
    LocallyWeightedConformal::Options opts;
    opts.alpha = options_.alpha;
    opts.gbdt = options_.gbdt;
    LocallyWeightedConformal lw(opts);
    {
      PrepTimer prep(&result);
      CONFCARD_CHECK(
          lw.FitDifficulty(Features(train_), train_est, Truths(train_))
              .ok());
      CONFCARD_CHECK(lw.Calibrate(Features(calib_), calib_est, calib_truth)
                         .ok());
    }

    std::vector<std::vector<float>> test_feat = Features(test_);
    ClipCounter clip(result.method);
    {
      InferTimer infer(&result, test_.size());
      EventClock clock;
      for (size_t i = 0; i < test_.size(); ++i) {
        const double t0 = clock.NowUs();
        Interval iv =
            clip.Clip(lw.Predict(test_est[i], test_feat[i]), num_rows_);
        result.rows.push_back({test_[i].cardinality, test_est[i], iv.lo,
                               iv.hi, clock.NowUs() - t0});
      }
    }
    FinalizeMethodResult(&result, num_rows_);
    return result;
  }

  // Ensemble / perturbation difficulty: U per query, computed here.
  result.method = source == DifficultySource::kEnsemble
                      ? "lw-s-cp(ens)"
                      : "lw-s-cp(pert)";
  obs::TraceSpan span("harness." + result.method);
  auto prep = std::make_unique<PrepTimer>(&result);
  std::vector<double> u_calib(calib_.size()), u_test(test_.size());
  if (source == DifficultySource::kEnsemble) {
    CONFCARD_CHECK_MSG(prototype != nullptr,
                       "ensemble difficulty needs a prototype");
    // Clones are created serially (instance ids stay deterministic) and
    // trained concurrently; each member's weights depend only on its own
    // seed, so the ensemble is identical at any thread count.
    std::vector<std::unique_ptr<SupervisedEstimator>> ensemble;
    ensemble.reserve(static_cast<size_t>(options_.ensemble_size));
    for (int m = 0; m < options_.ensemble_size; ++m) {
      ensemble.push_back(
          prototype->CloneArchitecture(1000 + static_cast<uint64_t>(m)));
    }
    ParallelFor(ensemble.size(), 1, [&](size_t begin, size_t end) {
      for (size_t m = begin; m < end; ++m) {
        CONFCARD_CHECK(ensemble[m]->Train(*table_, train_).ok());
      }
    });
    // A serial run leaves the last member's training telemetry in the
    // registry; restore that state after the concurrent phase.
    ensemble.back()->RepublishTrainingTelemetry();
    auto difficulty = [&](const Workload& wl, std::vector<double>* out) {
      ParallelFor(wl.size(), 0, [&](size_t begin, size_t end) {
        std::vector<double> preds;
        for (size_t i = begin; i < end; ++i) {
          preds.clear();
          preds.reserve(ensemble.size());
          for (const auto& m : ensemble) {
            preds.push_back(m->EstimateCardinality(wl[i].query));
          }
          (*out)[i] = std::max(1.0, StdDev(preds));
        }
      });
    };
    difficulty(calib_, &u_calib);
    difficulty(test_, &u_test);
  } else {
    // Perturbation: jitter each predicate's bounds by up to 2% of the
    // column span and measure the estimate's sensitivity. One Rng stream
    // is shared sequentially across queries, so this path must stay
    // serial: fanning it out would reorder the draws and change outputs.
    Rng rng(options_.seed ^ 0x9E37ull);
    auto perturb = [&](const Query& q, Rng& r) {
      Query out = q;
      for (Predicate& p : out.predicates) {
        const Column& col = table_->column(static_cast<size_t>(p.column));
        double span =
            std::max(col.max_value() - col.min_value(), 1.0) * 0.02;
        if (p.op == PredOp::kEq && col.is_categorical()) continue;
        double d1 = r.NextDouble(-span, span);
        double d2 = r.NextDouble(-span, span);
        p.lo = std::min(p.lo + d1, p.hi + d2);
        p.hi = std::max(p.lo, p.hi + d2);
      }
      return out;
    };
    auto difficulty = [&](const Workload& wl, std::vector<double>* out) {
      for (size_t i = 0; i < wl.size(); ++i) {
        std::vector<double> preds;
        preds.reserve(static_cast<size_t>(options_.perturbations));
        for (int k = 0; k < options_.perturbations; ++k) {
          preds.push_back(
              model.EstimateCardinality(perturb(wl[i].query, rng)));
        }
        (*out)[i] = std::max(1.0, StdDev(preds));
      }
    };
    difficulty(calib_, &u_calib);
    difficulty(test_, &u_test);
  }

  std::vector<double> scaled(calib_.size());
  for (size_t i = 0; i < calib_.size(); ++i) {
    scaled[i] = std::fabs(calib_truth[i] - calib_est[i]) / u_calib[i];
  }
  const double delta = ConformalQuantile(std::move(scaled), options_.alpha);
  prep.reset();

  ClipCounter clip(result.method);
  {
    InferTimer infer(&result, test_.size());
    EventClock clock;
    for (size_t i = 0; i < test_.size(); ++i) {
      const double t0 = clock.NowUs();
      const double half = delta * u_test[i];
      Interval iv =
          clip.Clip({test_est[i] - half, test_est[i] + half}, num_rows_);
      result.rows.push_back({test_[i].cardinality, test_est[i], iv.lo,
                             iv.hi, clock.NowUs() - t0});
    }
  }
  FinalizeMethodResult(&result, num_rows_);
  return result;
}

MethodResult SingleTableHarness::RunCqr(
    const SupervisedEstimator& prototype) const {
  MethodResult result;
  result.model = prototype.name();
  result.method = "cqr";
  result.alpha = options_.alpha;
  obs::TraceSpan span("harness.cqr");

  ConformalizedQuantileRegression cqr(options_.alpha);
  std::unique_ptr<SupervisedEstimator> lo_model, hi_model;
  {
    PrepTimer prep(&result);
    lo_model = prototype.CloneArchitecture(2101);
    lo_model->SetLoss(LossSpec::Pinball(cqr.lower_tau()));
    hi_model = prototype.CloneArchitecture(2203);
    hi_model->SetLoss(LossSpec::Pinball(cqr.upper_tau()));
    // The two quantile heads train concurrently; a serial run trains the
    // upper head last, so its telemetry is republished after the join.
    SupervisedEstimator* heads[2] = {lo_model.get(), hi_model.get()};
    ParallelFor(2, 1, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        CONFCARD_CHECK(heads[i]->Train(*table_, train_).ok());
      }
    });
    hi_model->RepublishTrainingTelemetry();

    std::vector<double> lo_calib = Estimates(*lo_model, calib_);
    std::vector<double> hi_calib = Estimates(*hi_model, calib_);
    CONFCARD_CHECK(cqr.Calibrate(lo_calib, hi_calib, Truths(calib_)).ok());
  }

  std::vector<double> lo_test = Estimates(*lo_model, test_);
  std::vector<double> hi_test = Estimates(*hi_model, test_);
  ClipCounter clip(result.method);
  {
    InferTimer infer(&result, test_.size());
    EventClock clock;
    for (size_t i = 0; i < test_.size(); ++i) {
      const double t0 = clock.NowUs();
      Interval iv =
          clip.Clip(cqr.Predict(lo_test[i], hi_test[i]), num_rows_);
      const double center = 0.5 * (lo_test[i] + hi_test[i]);
      result.rows.push_back({test_[i].cardinality, center, iv.lo, iv.hi,
                             clock.NowUs() - t0});
    }
  }
  FinalizeMethodResult(&result, num_rows_);
  return result;
}

MethodResult SingleTableHarness::RunJkCv(
    const SupervisedEstimator& prototype,
    const CardinalityEstimator& full_model, bool simplified) const {
  MethodResult result = MakeResult(full_model, simplified ? "jk-cv+(s)"
                                                          : "jk-cv+");
  // JK-CV+ consumes the whole labeled dataset; no separate calibration
  // split is needed (Algorithm 1).
  Workload all = train_;
  all.insert(all.end(), calib_.begin(), calib_.end());
  const int k = options_.jk_folds;
  obs::TraceSpan span("harness." + result.method);

  std::vector<std::unique_ptr<SupervisedEstimator>> fold_models;
  JackknifeCvPlus jk(scoring_, options_.alpha,
                     simplified ? JackknifeCvPlus::Mode::kSimplified
                                : JackknifeCvPlus::Mode::kFull);
  {
    PrepTimer prep(&result);
    std::vector<int> fold_of = AssignFolds(all.size(), k, options_.seed);
    // The K fold models are the dominant cost of JK-CV+ (the paper's
    // headline finding); they train concurrently. Clones are created
    // serially so instance ids stay deterministic, and each fold's
    // weights depend only on its own seed (3000 + f) and sub-workload,
    // so results are bit-identical at any thread count.
    fold_models.reserve(static_cast<size_t>(k));
    for (int f = 0; f < k; ++f) {
      fold_models.push_back(
          prototype.CloneArchitecture(3000 + static_cast<uint64_t>(f)));
    }
    ParallelFor(static_cast<size_t>(k), 1, [&](size_t begin, size_t end) {
      for (size_t f = begin; f < end; ++f) {
        // Detail-only per-fold span: shows which worker trained which
        // fold and nests the model's own training spans beneath it.
        std::optional<obs::TraceSpan> fold_span;
        if (obs::DetailSpansEnabled()) {
          fold_span.emplace("fold.train");
          fold_span->SetAttr("fold", static_cast<double>(f));
        }
        Workload fold_train;
        fold_train.reserve(all.size());
        for (size_t i = 0; i < all.size(); ++i) {
          if (fold_of[i] != static_cast<int>(f)) fold_train.push_back(all[i]);
        }
        CONFCARD_CHECK(fold_models[f]->Train(*table_, fold_train).ok());
      }
    });
    // A serial run trains fold k-1 last; restore its telemetry.
    fold_models.back()->RepublishTrainingTelemetry();
    std::vector<double> oof(all.size());
    std::vector<double> truths(all.size());
    ParallelFor(all.size(), 0, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        oof[i] = fold_models[static_cast<size_t>(fold_of[i])]
                     ->EstimateCardinality(all[i].query);
        truths[i] = all[i].cardinality;
      }
    });
    CONFCARD_CHECK(jk.Calibrate(oof, truths, fold_of, k).ok());
  }

  std::vector<double> full_est = Estimates(full_model, test_);
  ClipCounter clip(result.method);
  {
    InferTimer infer(&result, test_.size());
    EventClock clock;
    // In full mode each test query runs all K fold models, the most
    // expensive per-query loop in the harness; queries fan out with one
    // scratch fold_est per chunk, writing rows into pre-sized slots.
    result.rows.resize(test_.size());
    ParallelFor(test_.size(), 0, [&](size_t begin, size_t end) {
      std::vector<double> fold_est(static_cast<size_t>(k));
      for (size_t i = begin; i < end; ++i) {
        const double t0 = clock.NowUs();
        if (!simplified) {
          for (int f = 0; f < k; ++f) {
            fold_est[static_cast<size_t>(f)] =
                fold_models[static_cast<size_t>(f)]->EstimateCardinality(
                    test_[i].query);
          }
        }
        Interval iv = clip.Clip(jk.Predict(fold_est, full_est[i]), num_rows_);
        result.rows[i] = {test_[i].cardinality, full_est[i], iv.lo, iv.hi,
                          clock.NowUs() - t0};
      }
    });
  }
  FinalizeMethodResult(&result, num_rows_);
  return result;
}

MethodResult SingleTableHarness::RunJkCvFixedModel(
    const CardinalityEstimator& model) const {
  MethodResult result = MakeResult(model, "jk-cv+");
  Workload all = train_;
  all.insert(all.end(), calib_.begin(), calib_.end());
  const int k = options_.jk_folds;
  obs::TraceSpan span("harness.jk-cv+");

  JackknifeCvPlus jk(scoring_, options_.alpha);
  {
    PrepTimer prep(&result);
    std::vector<int> fold_of = AssignFolds(all.size(), k, options_.seed);
    // Compose the out-of-fold estimates from the per-split caches (the
    // fold models all coincide with `model`).
    std::vector<double> oof = Estimates(model, train_);
    const std::vector<double>& calib_est = Estimates(model, calib_);
    oof.insert(oof.end(), calib_est.begin(), calib_est.end());
    std::vector<double> truths = Truths(all);
    CONFCARD_CHECK(jk.Calibrate(oof, truths, fold_of, k).ok());
  }

  std::vector<double> test_est = Estimates(model, test_);
  ClipCounter clip(result.method);
  {
    InferTimer infer(&result, test_.size());
    EventClock clock;
    for (size_t i = 0; i < test_.size(); ++i) {
      const double t0 = clock.NowUs();
      // All fold models coincide with the full model.
      std::vector<double> fold_est(static_cast<size_t>(k), test_est[i]);
      Interval iv = clip.Clip(jk.Predict(fold_est, test_est[i]), num_rows_);
      result.rows.push_back({test_[i].cardinality, test_est[i], iv.lo,
                             iv.hi, clock.NowUs() - t0});
    }
  }
  FinalizeMethodResult(&result, num_rows_);
  return result;
}

}  // namespace confcard
