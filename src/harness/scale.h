// Workload scale knob shared by all benches: CONFCARD_SCALE multiplies
// row counts and query counts so the same binaries run as a quick smoke
// (scale < 1), a default CI pass (1.0), or paper-sized workloads.
#ifndef CONFCARD_HARNESS_SCALE_H_
#define CONFCARD_HARNESS_SCALE_H_

#include <cstddef>

namespace confcard {
namespace bench {

/// Scale factor from the CONFCARD_SCALE environment variable (default 1;
/// clamped to [0.01, 1000]).
double BenchScale();

/// base * BenchScale(), floored at `min_value`.
size_t Scaled(size_t base, size_t min_value = 16);

}  // namespace bench
}  // namespace confcard

#endif  // CONFCARD_HARNESS_SCALE_H_
