#include "harness/report.h"

#include <algorithm>
#include <cstdio>

#include "common/csv.h"
#include "obs/metrics.h"

namespace confcard {

void PrintExperimentHeader(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
  obs::Metrics().SetMeta("experiment.id", id);
  obs::Metrics().SetMeta("experiment.title", title);
}

void PrintMethodTable(const std::vector<MethodResult>& results) {
  std::printf(
      "%-10s %-12s %7s %9s %12s %12s %12s %10s %10s %12s %12s\n", "model",
      "method", "alpha", "coverage", "mean_w(sel)", "med_w(sel)",
      "p90_w(sel)", "winkler", "med_qerr", "prep(ms)", "infer(us/q)");
  for (const MethodResult& r : results) {
    std::printf(
        "%-10s %-12s %7.3f %9.4f %12.6f %12.6f %12.6f %10.5f %10.3f "
        "%12.2f %12.2f\n",
        r.model.c_str(), r.method.c_str(), r.alpha, r.coverage,
        r.mean_width_sel, r.median_width_sel, r.p90_width_sel,
        r.winkler_sel, r.mean_qerror, r.prep_millis, r.infer_micros);
  }
}

void PrintSeries(const MethodResult& result, double num_rows,
                 size_t max_points) {
  std::vector<PiRow> rows = result.rows;
  std::sort(rows.begin(), rows.end(),
            [](const PiRow& a, const PiRow& b) { return a.truth < b.truth; });
  if (rows.size() > max_points) {
    // Evenly strided subsample preserving the selectivity sweep.
    std::vector<PiRow> sub;
    sub.reserve(max_points);
    for (size_t i = 0; i < max_points; ++i) {
      sub.push_back(rows[i * rows.size() / max_points]);
    }
    rows = std::move(sub);
  }
  std::printf("  series %s/%s (normalized selectivity):\n",
              result.model.c_str(), result.method.c_str());
  std::printf("    %12s %12s %12s %12s %8s\n", "truth", "estimate", "lo",
              "hi", "covered");
  for (const PiRow& r : rows) {
    std::printf("    %12.6f %12.6f %12.6f %12.6f %8s\n", r.truth / num_rows,
                r.estimate / num_rows, r.lo / num_rows, r.hi / num_rows,
                r.covered() ? "yes" : "NO");
  }
}

Status WriteSeriesCsv(const std::string& path, const MethodResult& result) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(result.rows.size());
  for (size_t i = 0; i < result.rows.size(); ++i) {
    const PiRow& r = result.rows[i];
    rows.push_back({std::to_string(i), std::to_string(r.truth),
                    std::to_string(r.estimate), std::to_string(r.lo),
                    std::to_string(r.hi)});
  }
  CONFCARD_RETURN_NOT_OK(
      WriteCsv(path, {"query", "truth", "estimate", "lo", "hi"}, rows));
  std::printf("  wrote %s (%zu rows)\n", path.c_str(), result.rows.size());
  return Status::OK();
}

}  // namespace confcard
