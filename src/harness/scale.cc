#include "harness/scale.h"

#include <algorithm>
#include <cstdlib>

namespace confcard {
namespace bench {

double BenchScale() {
  static const double scale = [] {
    const char* env = std::getenv("CONFCARD_SCALE");
    if (env == nullptr) return 1.0;
    char* end = nullptr;
    double v = std::strtod(env, &end);
    if (end == env || v <= 0.0) return 1.0;
    return std::clamp(v, 0.01, 1000.0);
  }();
  return scale;
}

size_t Scaled(size_t base, size_t min_value) {
  const double scaled = static_cast<double>(base) * BenchScale();
  const size_t v = static_cast<size_t>(scaled);
  return std::max(v, min_value);
}

}  // namespace bench
}  // namespace confcard
