// Join-workload counterpart of SingleTableHarness (Figures 3-4): wraps
// an MSCN join estimator with the four PI methods over a labeled SPJ
// workload. The PI algorithms are identical — they consume residuals —
// which is precisely the paper's point about multi-table transparency.
#ifndef CONFCARD_HARNESS_JOIN_HARNESS_H_
#define CONFCARD_HARNESS_JOIN_HARNESS_H_

#include <map>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "ce/mscn.h"
#include "common/status.h"
#include "conformal/scoring.h"
#include "gbdt/gbdt.h"
#include "harness/evaluation.h"

namespace confcard {

/// Join-experiment harness.
class JoinHarness {
 public:
  struct Options {
    double alpha = 0.1;
    ScoreKind score = ScoreKind::kResidual;
    int jk_folds = 10;
    gbdt::GbdtConfig gbdt;
    uint64_t seed = 6;
  };

  JoinHarness(const Database& db, JoinWorkload train, JoinWorkload calib,
              JoinWorkload test, Options options);

  /// Validating factory for user-supplied configs: checks alpha, fold
  /// count, and non-empty calibration/test splits, returning
  /// InvalidArgument instead of tripping the constructor's CHECKs.
  static Result<JoinHarness> Make(const Database& db, JoinWorkload train,
                                  JoinWorkload calib, JoinWorkload test,
                                  Options options);

  MethodResult RunScp(const MscnJoinEstimator& model) const;
  MethodResult RunLwScp(const MscnJoinEstimator& model) const;
  MethodResult RunCqr(const MscnJoinEstimator& prototype) const;
  MethodResult RunJkCv(const MscnJoinEstimator& prototype,
                       const MscnJoinEstimator& full_model) const;

  const JoinWorkload& test() const { return test_; }

 private:
  /// Per-(model, workload) cached estimates (join inference runs K+2
  /// times per JK experiment otherwise).
  const std::vector<double>& Estimates(const MscnJoinEstimator& model,
                                       const JoinWorkload& wl) const;
  std::vector<double> Truths(const JoinWorkload& wl) const;
  /// Normalizer for interval widths: the fact-side table size.
  double Normalizer() const;

  const Database* db_;
  JoinWorkload train_, calib_, test_;
  Options options_;
  std::shared_ptr<const ScoringFunction> scoring_;
  // Keyed by (model instance id, workload slot, content hash) — see the
  // single-table harness: member identity for the owned splits, content
  // hash for anything else, never a raw caller address.
  mutable std::map<std::tuple<uint64_t, int, uint64_t>, std::vector<double>>
      estimate_cache_;
};

}  // namespace confcard

#endif  // CONFCARD_HARNESS_JOIN_HARNESS_H_
