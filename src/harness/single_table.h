// Orchestration of one single-table experiment: a table, three labeled
// workload splits (train / calibration / test), and runners that wrap a
// trained estimator with each of the paper's four PI methods and
// evaluate coverage/width/timing on the test split. This is the code
// path every figure bench goes through.
#ifndef CONFCARD_HARNESS_SINGLE_TABLE_H_
#define CONFCARD_HARNESS_SINGLE_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "ce/estimator.h"
#include "ce/featurizer.h"
#include "ce/guarded.h"
#include "common/status.h"
#include "conformal/scoring.h"
#include "gbdt/gbdt.h"
#include "harness/evaluation.h"

namespace confcard {

/// Difficulty-model choice for LW-S-CP (the U(X) ablation).
enum class DifficultySource {
  kGbdtMad,      // default: GBDT regression of |residual| (the paper's)
  kEnsemble,     // variance of an ensemble of retrained models
  kPerturbation  // variance under small predicate perturbations
};

/// Single-table experiment harness.
class SingleTableHarness {
 public:
  struct Options {
    double alpha = 0.1;
    ScoreKind score = ScoreKind::kResidual;
    int jk_folds = 10;
    /// Ensemble size for DifficultySource::kEnsemble.
    int ensemble_size = 3;
    /// Perturbations per query for DifficultySource::kPerturbation.
    int perturbations = 8;
    gbdt::GbdtConfig gbdt;
    uint64_t seed = 5;
    /// Multiplier applied to the calibrated quantile delta when building
    /// the interval of a degraded (fallback-answered) test query, so
    /// fallback answers get conservatively wider bands.
    double degraded_inflation = 4.0;
  };

  SingleTableHarness(const Table& table, Workload train, Workload calib,
                     Workload test, Options options);

  /// Validating factory for user-supplied configs: checks alpha, fold
  /// count, non-empty calibration/test splits, and every workload query
  /// against the table schema, returning InvalidArgument instead of
  /// tripping the constructor's CHECKs. The table must outlive the
  /// harness.
  static Result<SingleTableHarness> Make(const Table& table, Workload train,
                                         Workload calib, Workload test,
                                         Options options);

  /// Split conformal prediction over the calibration split.
  MethodResult RunScp(const CardinalityEstimator& model) const;

  /// S-CP through a guarded estimator. Calibrates on healthy calibration
  /// answers only; test queries the guard degraded get an interval
  /// inverted at delta * degraded_inflation and are flagged so
  /// FinalizeMethodResult aggregates them separately. With no faults
  /// armed this is row-for-row bit-identical to RunScp on the guard's
  /// primary (determinism_test enforces it).
  MethodResult RunScpGuarded(const GuardedEstimator& guard) const;

  /// Locally weighted S-CP; the difficulty model is fit on the training
  /// split's residuals (kGbdtMad) or derived from `prototype` retrains
  /// (kEnsemble) / query perturbations (kPerturbation). `prototype` may
  /// be null for kGbdtMad and kPerturbation.
  MethodResult RunLwScp(
      const CardinalityEstimator& model,
      DifficultySource source = DifficultySource::kGbdtMad,
      const SupervisedEstimator* prototype = nullptr) const;

  /// CQR: trains two pinball-loss clones of `prototype` on the training
  /// split and conformalizes their band on the calibration split.
  MethodResult RunCqr(const SupervisedEstimator& prototype) const;

  /// JK+ with K-fold CV: retrains `prototype` on each fold complement of
  /// the union train+calib (the method needs no separate calibration
  /// split). `full_model` supplies the name and (in simplified mode) the
  /// center estimate.
  MethodResult RunJkCv(const SupervisedEstimator& prototype,
                       const CardinalityEstimator& full_model,
                       bool simplified = false) const;

  /// JK-CV+ for models with no trainable workload dependence (Naru):
  /// all folds share `model`; residuals still come from K-fold splits of
  /// train+calib, matching the paper's Naru setup.
  MethodResult RunJkCvFixedModel(const CardinalityEstimator& model) const;

  const Table& table() const { return *table_; }
  const Workload& train() const { return train_; }
  const Workload& calib() const { return calib_; }
  const Workload& test() const { return test_; }
  const Options& options() const { return options_; }

  /// Model estimates over a workload, cached per (model, workload) pair
  /// so running several PI methods over the same trained model pays the
  /// inference cost once (Naru inference dominates otherwise).
  const std::vector<double>& Estimates(const CardinalityEstimator& model,
                                       const Workload& workload) const;

 private:
  std::vector<std::vector<float>> Features(const Workload& workload) const;
  std::vector<double> Truths(const Workload& workload) const;
  MethodResult MakeResult(const CardinalityEstimator& model,
                          const std::string& method) const;

  const Table* table_;
  Workload train_, calib_, test_;
  Options options_;
  std::shared_ptr<const ScoringFunction> scoring_;
  std::unique_ptr<FlatQueryFeaturizer> featurizer_;
  double num_rows_;
  // Estimate cache keyed by (model instance id, workload slot, content
  // hash). The instance id (not the model address) guards against
  // stack/heap slots being reused by a successor model. The slot
  // identifies the harness-owned splits (train/calib/test) by member —
  // not by address, which a temporary or reused buffer could alias — and
  // any other workload falls back to a content hash, so equal-content
  // calls share an entry and a recycled address can never serve stale
  // estimates.
  mutable std::map<std::tuple<uint64_t, int, uint64_t>, std::vector<double>>
      estimate_cache_;
};

}  // namespace confcard

#endif  // CONFCARD_HARNESS_SINGLE_TABLE_H_
