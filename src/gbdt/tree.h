// Regression tree with histogram-based split finding — the weak learner
// of the gradient-boosting regressor (our xgboost stand-in).
#ifndef CONFCARD_GBDT_TREE_H_
#define CONFCARD_GBDT_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/archive.h"

namespace confcard {
namespace gbdt {

/// Row-major feature matrix view: `num_rows` rows of `num_features`
/// consecutive floats.
struct FeatureMatrix {
  const float* data = nullptr;
  size_t num_rows = 0;
  size_t num_features = 0;

  const float* Row(size_t r) const { return data + r * num_features; }
};

/// Tree growth parameters.
struct TreeConfig {
  int max_depth = 4;
  size_t min_samples_leaf = 8;
  /// Histogram bins per feature for split finding.
  int num_bins = 32;
  /// Minimum SSE gain to accept a split.
  double min_gain = 1e-12;
};

/// Binary regression tree fit by greedy variance reduction over
/// feature histograms.
class RegressionTree {
 public:
  RegressionTree() = default;

  /// Fits to targets `y` over the rows of `X` listed in `rows`.
  /// `bin_edges[f]` are the precomputed bin boundaries for feature f
  /// (shared across trees by the booster); `bins` is the per-(row,
  /// feature) bin index matrix matching X's layout.
  void Fit(const FeatureMatrix& X, const std::vector<double>& y,
           const std::vector<uint32_t>& rows,
           const std::vector<std::vector<float>>& bin_edges,
           const std::vector<uint8_t>& bins, const TreeConfig& config,
           const std::vector<int>& feature_subset);

  /// Prediction for one feature row.
  double Predict(const float* x) const;

  size_t num_nodes() const { return nodes_.size(); }

  /// Appends the tree to `writer`.
  void Serialize(ArchiveWriter* writer) const;
  /// Reads a tree previously written by Serialize; validates node
  /// indices so a corrupt archive cannot produce out-of-range jumps.
  Status Deserialize(ArchiveReader* reader);

 private:
  struct Node {
    int feature = -1;       // -1 => leaf
    float threshold = 0.0f; // go left if x[feature] <= threshold
    int left = -1;
    int right = -1;
    double value = 0.0;     // leaf prediction
  };

  int Grow(const FeatureMatrix& X, const std::vector<double>& y,
           std::vector<uint32_t>& rows, size_t begin, size_t end, int depth,
           const std::vector<std::vector<float>>& bin_edges,
           const std::vector<uint8_t>& bins, const TreeConfig& config,
           const std::vector<int>& feature_subset);

  std::vector<Node> nodes_;
};

/// Computes per-feature histogram bin edges from (up to) the first
/// 20k sampled rows: approximately equi-depth boundaries, at most
/// `num_bins - 1` edges per feature.
std::vector<std::vector<float>> ComputeBinEdges(const FeatureMatrix& X,
                                                int num_bins);

/// Maps every (row, feature) value to its bin index given `bin_edges`.
std::vector<uint8_t> ComputeBins(
    const FeatureMatrix& X, const std::vector<std::vector<float>>& bin_edges);

}  // namespace gbdt
}  // namespace confcard

#endif  // CONFCARD_GBDT_TREE_H_
