#include "gbdt/tree.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace confcard {
namespace gbdt {

std::vector<std::vector<float>> ComputeBinEdges(const FeatureMatrix& X,
                                                int num_bins) {
  CONFCARD_CHECK(num_bins >= 2 && num_bins <= 256);
  std::vector<std::vector<float>> edges(X.num_features);
  // Cap the rows used for quantile estimation; edges are approximate
  // anyway and this keeps Fit linear in practice.
  const size_t sample_rows = std::min<size_t>(X.num_rows, 20000);
  std::vector<float> vals;
  vals.reserve(sample_rows);
  for (size_t f = 0; f < X.num_features; ++f) {
    vals.clear();
    for (size_t r = 0; r < sample_rows; ++r) {
      vals.push_back(X.Row(r)[f]);
    }
    std::sort(vals.begin(), vals.end());
    std::vector<float>& e = edges[f];
    for (int b = 1; b < num_bins; ++b) {
      size_t idx = static_cast<size_t>(
          static_cast<double>(b) / num_bins * static_cast<double>(vals.size()));
      if (idx >= vals.size()) idx = vals.size() - 1;
      float v = vals[idx];
      if (e.empty() || v > e.back()) e.push_back(v);
    }
  }
  return edges;
}

std::vector<uint8_t> ComputeBins(
    const FeatureMatrix& X,
    const std::vector<std::vector<float>>& bin_edges) {
  std::vector<uint8_t> bins(X.num_rows * X.num_features);
  for (size_t r = 0; r < X.num_rows; ++r) {
    const float* row = X.Row(r);
    for (size_t f = 0; f < X.num_features; ++f) {
      const std::vector<float>& e = bin_edges[f];
      // bin(v) = index of the first edge >= v, so that
      // bin <= j  <=>  v <= e[j]; values above the last edge land in
      // bin e.size().
      size_t b = static_cast<size_t>(
          std::lower_bound(e.begin(), e.end(), row[f]) - e.begin());
      bins[r * X.num_features + f] = static_cast<uint8_t>(b);
    }
  }
  return bins;
}

void RegressionTree::Fit(const FeatureMatrix& X, const std::vector<double>& y,
                         const std::vector<uint32_t>& rows,
                         const std::vector<std::vector<float>>& bin_edges,
                         const std::vector<uint8_t>& bins,
                         const TreeConfig& config,
                         const std::vector<int>& feature_subset) {
  nodes_.clear();
  CONFCARD_CHECK(!rows.empty());
  std::vector<uint32_t> work = rows;
  Grow(X, y, work, 0, work.size(), 0, bin_edges, bins, config,
       feature_subset);
}

int RegressionTree::Grow(const FeatureMatrix& X, const std::vector<double>& y,
                         std::vector<uint32_t>& rows, size_t begin,
                         size_t end, int depth,
                         const std::vector<std::vector<float>>& bin_edges,
                         const std::vector<uint8_t>& bins,
                         const TreeConfig& config,
                         const std::vector<int>& feature_subset) {
  const size_t n = end - begin;
  double total_sum = 0.0;
  for (size_t i = begin; i < end; ++i) total_sum += y[rows[i]];
  const double mean = total_sum / static_cast<double>(n);

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<size_t>(node_id)].value = mean;

  if (depth >= config.max_depth || n < 2 * config.min_samples_leaf) {
    return node_id;
  }

  // Best split search over feature histograms.
  int best_feature = -1;
  size_t best_bin = 0;
  double best_gain = config.min_gain;
  const double parent_score = total_sum * total_sum / static_cast<double>(n);

  std::vector<double> bin_sum;
  std::vector<uint32_t> bin_count;
  for (int f : feature_subset) {
    const std::vector<float>& e = bin_edges[static_cast<size_t>(f)];
    if (e.empty()) continue;
    const size_t nb = e.size() + 1;
    bin_sum.assign(nb, 0.0);
    bin_count.assign(nb, 0);
    for (size_t i = begin; i < end; ++i) {
      uint32_t r = rows[i];
      uint8_t b = bins[r * X.num_features + static_cast<size_t>(f)];
      bin_sum[b] += y[r];
      bin_count[b] += 1;
    }
    double left_sum = 0.0;
    uint32_t left_n = 0;
    // Split "bin <= j": j ranges over edges only (last bin can't split).
    for (size_t j = 0; j + 1 < nb; ++j) {
      left_sum += bin_sum[j];
      left_n += bin_count[j];
      uint32_t right_n = static_cast<uint32_t>(n) - left_n;
      if (left_n < config.min_samples_leaf ||
          right_n < config.min_samples_leaf) {
        continue;
      }
      double right_sum = total_sum - left_sum;
      double gain = left_sum * left_sum / left_n +
                    right_sum * right_sum / right_n - parent_score;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_bin = j;
      }
    }
  }

  if (best_feature < 0) return node_id;

  const float threshold =
      bin_edges[static_cast<size_t>(best_feature)][best_bin];
  auto mid_it = std::partition(
      rows.begin() + static_cast<long>(begin),
      rows.begin() + static_cast<long>(end), [&](uint32_t r) {
        return bins[r * X.num_features +
                    static_cast<size_t>(best_feature)] <= best_bin;
      });
  size_t mid = static_cast<size_t>(mid_it - rows.begin());
  // Histogram counting guarantees both sides are non-empty.
  CONFCARD_DCHECK(mid > begin && mid < end);

  nodes_[static_cast<size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<size_t>(node_id)].threshold = threshold;
  int left = Grow(X, y, rows, begin, mid, depth + 1, bin_edges, bins, config,
                  feature_subset);
  nodes_[static_cast<size_t>(node_id)].left = left;
  int right = Grow(X, y, rows, mid, end, depth + 1, bin_edges, bins, config,
                   feature_subset);
  nodes_[static_cast<size_t>(node_id)].right = right;
  return node_id;
}

void RegressionTree::Serialize(ArchiveWriter* writer) const {
  writer->WriteU64(nodes_.size());
  for (const Node& n : nodes_) {
    writer->WriteI32(n.feature);
    writer->WriteFloat(n.threshold);
    writer->WriteI32(n.left);
    writer->WriteI32(n.right);
    writer->WriteDouble(n.value);
  }
}

Status RegressionTree::Deserialize(ArchiveReader* reader) {
  const uint64_t n = reader->ReadU64();
  if (!reader->status().ok()) return reader->status();
  if (n == 0 || n > (1ull << 24)) {
    return Status::InvalidArgument("implausible tree size");
  }
  nodes_.resize(static_cast<size_t>(n));
  for (Node& node : nodes_) {
    node.feature = reader->ReadI32();
    node.threshold = reader->ReadFloat();
    node.left = reader->ReadI32();
    node.right = reader->ReadI32();
    node.value = reader->ReadDouble();
  }
  CONFCARD_RETURN_NOT_OK(reader->status());
  for (const Node& node : nodes_) {
    if (node.feature < 0) continue;  // leaf
    if (node.left < 0 || node.right < 0 ||
        static_cast<size_t>(node.left) >= nodes_.size() ||
        static_cast<size_t>(node.right) >= nodes_.size()) {
      return Status::InvalidArgument("tree archive has invalid child "
                                     "indices");
    }
  }
  return Status::OK();
}

double RegressionTree::Predict(const float* x) const {
  CONFCARD_DCHECK(!nodes_.empty());
  int idx = 0;
  for (;;) {
    const Node& node = nodes_[static_cast<size_t>(idx)];
    if (node.feature < 0) return node.value;
    idx = x[node.feature] <= node.threshold ? node.left : node.right;
  }
}

}  // namespace gbdt
}  // namespace confcard
