#include "gbdt/gbdt.h"

#include <algorithm>

#include "common/rng.h"

namespace confcard {
namespace gbdt {

Status GbdtRegressor::Fit(const std::vector<float>& X, size_t num_features,
                          const std::vector<double>& y) {
  if (num_features == 0) {
    return Status::InvalidArgument("num_features must be positive");
  }
  if (X.size() != y.size() * num_features) {
    return Status::InvalidArgument("feature matrix / target size mismatch");
  }
  if (y.empty()) return Status::InvalidArgument("empty training set");
  if (config_.subsample <= 0.0 || config_.subsample > 1.0 ||
      config_.colsample <= 0.0 || config_.colsample > 1.0) {
    return Status::InvalidArgument("subsample fractions must be in (0,1]");
  }

  FeatureMatrix mat{X.data(), y.size(), num_features};
  const auto bin_edges = ComputeBinEdges(mat, config_.tree.num_bins);
  const auto bins = ComputeBins(mat, bin_edges);

  base_prediction_ = 0.0;
  for (double v : y) base_prediction_ += v;
  base_prediction_ /= static_cast<double>(y.size());

  std::vector<double> residual(y.size());
  for (size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - base_prediction_;

  Rng rng(config_.seed);
  std::vector<uint32_t> all_rows(y.size());
  for (size_t i = 0; i < y.size(); ++i) all_rows[i] = static_cast<uint32_t>(i);
  std::vector<int> all_features(num_features);
  for (size_t f = 0; f < num_features; ++f) {
    all_features[f] = static_cast<int>(f);
  }

  trees_.clear();
  trees_.reserve(static_cast<size_t>(config_.num_trees));
  const size_t rows_per_tree = std::max<size_t>(
      config_.tree.min_samples_leaf * 2,
      static_cast<size_t>(config_.subsample * static_cast<double>(y.size())));
  const size_t feats_per_tree = std::max<size_t>(
      1, static_cast<size_t>(config_.colsample *
                             static_cast<double>(num_features)));

  for (int t = 0; t < config_.num_trees; ++t) {
    std::vector<uint32_t> rows = all_rows;
    if (rows_per_tree < rows.size()) {
      rng.Shuffle(rows);
      rows.resize(rows_per_tree);
    }
    std::vector<int> feats = all_features;
    if (feats_per_tree < feats.size()) {
      rng.Shuffle(feats);
      feats.resize(feats_per_tree);
      std::sort(feats.begin(), feats.end());
    }

    RegressionTree tree;
    tree.Fit(mat, residual, rows, bin_edges, bins, config_.tree, feats);

    // Shrunken update of all residuals (not just the subsample).
    const double lr = config_.learning_rate;
    for (size_t i = 0; i < y.size(); ++i) {
      residual[i] -= lr * tree.Predict(mat.Row(i));
    }
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
  return Status::OK();
}

namespace {
// 'CGB1' — confcard gbdt archive.
constexpr uint32_t kGbdtMagic = 0x43474231;
constexpr uint32_t kGbdtVersion = 1;
}  // namespace

Status GbdtRegressor::SaveToFile(const std::string& path) const {
  if (!fitted_) return Status::FailedPrecondition("model not fitted");
  ArchiveWriter w(kGbdtMagic, kGbdtVersion);
  w.WriteI32(config_.num_trees);
  w.WriteDouble(config_.learning_rate);
  w.WriteI32(config_.tree.max_depth);
  w.WriteU64(config_.tree.min_samples_leaf);
  w.WriteI32(config_.tree.num_bins);
  w.WriteDouble(config_.tree.min_gain);
  w.WriteDouble(config_.subsample);
  w.WriteDouble(config_.colsample);
  w.WriteU64(config_.seed);
  w.WriteDouble(base_prediction_);
  w.WriteU64(trees_.size());
  for (const RegressionTree& t : trees_) t.Serialize(&w);
  return w.SaveToFile(path);
}

Result<GbdtRegressor> GbdtRegressor::LoadFromFile(const std::string& path) {
  CONFCARD_ASSIGN_OR_RETURN(
      ArchiveReader r,
      ArchiveReader::FromFile(path, kGbdtMagic, kGbdtVersion));
  GbdtConfig cfg;
  cfg.num_trees = r.ReadI32();
  cfg.learning_rate = r.ReadDouble();
  cfg.tree.max_depth = r.ReadI32();
  cfg.tree.min_samples_leaf = static_cast<size_t>(r.ReadU64());
  cfg.tree.num_bins = r.ReadI32();
  cfg.tree.min_gain = r.ReadDouble();
  cfg.subsample = r.ReadDouble();
  cfg.colsample = r.ReadDouble();
  cfg.seed = r.ReadU64();
  GbdtRegressor model(cfg);
  model.base_prediction_ = r.ReadDouble();
  const uint64_t num_trees = r.ReadU64();
  CONFCARD_RETURN_NOT_OK(r.status());
  if (num_trees > (1ull << 20)) {
    return Status::InvalidArgument("implausible tree count");
  }
  model.trees_.resize(static_cast<size_t>(num_trees));
  for (RegressionTree& t : model.trees_) {
    CONFCARD_RETURN_NOT_OK(t.Deserialize(&r));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in gbdt archive");
  }
  model.fitted_ = true;
  return model;
}

double GbdtRegressor::Predict(const float* x) const {
  double out = base_prediction_;
  for (const RegressionTree& tree : trees_) {
    out += config_.learning_rate * tree.Predict(x);
  }
  return out;
}

}  // namespace gbdt
}  // namespace confcard
