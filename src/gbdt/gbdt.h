// Gradient-boosted regression trees (squared loss). Stand-in for the
// xgboost model the paper uses as the difficulty regressor U(X) = g(X)
// of locally weighted split conformal prediction.
#ifndef CONFCARD_GBDT_GBDT_H_
#define CONFCARD_GBDT_GBDT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/archive.h"

#include "common/status.h"
#include "gbdt/tree.h"

namespace confcard {
namespace gbdt {

/// Boosting parameters.
struct GbdtConfig {
  int num_trees = 120;
  double learning_rate = 0.1;
  TreeConfig tree;
  /// Row subsample fraction per tree (stochastic gradient boosting).
  double subsample = 0.8;
  /// Feature subsample fraction per tree.
  double colsample = 1.0;
  uint64_t seed = 41;
};

/// Gradient-boosted regressor minimizing squared error.
class GbdtRegressor {
 public:
  explicit GbdtRegressor(GbdtConfig config = {}) : config_(config) {}

  /// Fits on row-major features `X` (n x d, flattened) and targets `y`.
  Status Fit(const std::vector<float>& X, size_t num_features,
             const std::vector<double>& y);

  /// Predicts one row (length = num_features).
  double Predict(const float* x) const;
  double Predict(const std::vector<float>& x) const {
    return Predict(x.data());
  }

  bool fitted() const { return fitted_; }
  const GbdtConfig& config() const { return config_; }

  /// Persists the fitted model (config + trees) to `path`.
  Status SaveToFile(const std::string& path) const;
  /// Loads a model previously saved with SaveToFile.
  static Result<GbdtRegressor> LoadFromFile(const std::string& path);

 private:
  GbdtConfig config_;
  bool fitted_ = false;
  double base_prediction_ = 0.0;
  std::vector<RegressionTree> trees_;
};

}  // namespace gbdt
}  // namespace confcard

#endif  // CONFCARD_GBDT_GBDT_H_
