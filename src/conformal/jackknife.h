// Jackknife+ with K-fold cross validation (Section III-B, CV+ of Barber
// et al.). The dataset is split into K folds; fold model f_{-k} is
// trained without fold k; residual r_i is computed under the model that
// did NOT see example i. Two inference modes:
//   * kFull (Eq. 5): interval endpoints are conformal quantiles of
//     { Invert(f_{-k(i)}(X), r_i) } over all calibration points — for
//     the residual score this is exactly
//     [ q-_{alpha}{f_{-k(i)}(X) - r_i}, q+_{1-alpha}{f_{-k(i)}(X) + r_i} ].
//   * kSimplified (Algorithm 1 as printed): a single delta quantile of
//     the residuals applied around the full model's estimate.
// Fold training is the caller's job (it owns the estimators); this class
// consumes fold assignments, per-point out-of-fold estimates, and
// per-query fold-model predictions.
#ifndef CONFCARD_CONFORMAL_JACKKNIFE_H_
#define CONFCARD_CONFORMAL_JACKKNIFE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "conformal/interval.h"
#include "conformal/scoring.h"

namespace confcard {

/// Uniform random assignment of n points to K folds (each fold within
/// one point of n/K in size).
std::vector<int> AssignFolds(size_t n, int k, uint64_t seed);

/// Jackknife+/CV+ calibration and inference.
class JackknifeCvPlus {
 public:
  enum class Mode { kFull, kSimplified };

  JackknifeCvPlus(std::shared_ptr<const ScoringFunction> scoring,
                  double alpha, Mode mode = Mode::kFull);

  /// `oof_estimates[i]` = estimate for point i by the fold model that
  /// excluded i; `fold_of[i]` in [0, K).
  Status Calibrate(const std::vector<double>& oof_estimates,
                   const std::vector<double>& truths,
                   const std::vector<int>& fold_of, int num_folds);

  /// Full CV+ interval for a new query given each fold model's estimate
  /// for it (`fold_estimates[k]` = f_{-k}(X)). `full_estimate` is the
  /// full-data model's output, used in kSimplified mode (pass the
  /// fold-estimate mean if no full model was trained).
  Interval Predict(const std::vector<double>& fold_estimates,
                   double full_estimate) const;

  /// Coverage floor of CV+ from the paper:
  /// 1 - 2*alpha - min{ 2(1-1/K)/(n/K+1), (1-K/n)/(K+1) }.
  double CoverageGuarantee() const;

  double simplified_delta() const { return delta_; }
  Mode mode() const { return mode_; }
  int num_folds() const { return num_folds_; }

 private:
  std::shared_ptr<const ScoringFunction> scoring_;
  double alpha_;
  Mode mode_;
  int num_folds_ = 0;
  size_t n_ = 0;
  std::vector<double> scores_;   // r_i
  std::vector<int> fold_of_;
  double delta_ = 0.0;           // simplified-mode quantile
  bool calibrated_ = false;
};

}  // namespace confcard

#endif  // CONFCARD_CONFORMAL_JACKKNIFE_H_
