// Online exchangeability testing via plug-in/power martingales
// (Fedorova et al., ICML 2012 — reference [9] of the paper). Conformal
// p-values computed against the history are i.i.d. uniform under
// exchangeability; a power martingale M_t = prod_i eps * p_i^(eps-1)
// grows only when small p-values cluster, i.e. when the score stream
// drifts. The paper proposes exactly this as the workload-shift detector
// that should accompany deployed PIs (Section V-D).
#ifndef CONFCARD_CONFORMAL_EXCHANGEABILITY_H_
#define CONFCARD_CONFORMAL_EXCHANGEABILITY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace confcard {

/// Streaming exchangeability test over nonconformity scores.
class ExchangeabilityTest {
 public:
  /// `epsilons` are the power-martingale exponents mixed over (the
  /// "simple mixture" variant); the default grid covers mild to sharp
  /// drifts. `seed` drives the p-value tie-breaking randomization.
  explicit ExchangeabilityTest(std::vector<double> epsilons = {0.5, 0.6,
                                                               0.7, 0.8,
                                                               0.9},
                               uint64_t seed = 1331);

  /// Feeds the next score; returns its conformal p-value.
  double Observe(double score);

  /// log of the mixture martingale (average of per-epsilon martingales).
  double LogMartingale() const;

  /// Rejects exchangeability at significance `level` when the martingale
  /// exceeds 1/level (Ville's inequality).
  bool Reject(double level = 0.01) const;

  size_t num_observed() const { return history_.size(); }

 private:
  std::vector<double> epsilons_;
  std::vector<double> log_m_;   // per-epsilon log martingale
  std::vector<double> history_; // sorted scores seen so far
  uint64_t rng_state_;
};

}  // namespace confcard

#endif  // CONFCARD_CONFORMAL_EXCHANGEABILITY_H_
