// Conformal scoring functions (Section III-C and V-C of the paper).
// A score abstracts "how wrong was the model on this example"; coverage
// validity holds for any exchangeable score, while informativeness
// determines interval width. Each scoring function also knows how to
// invert "score(estimate, y) <= delta" into an interval over y, which is
// how the calibrated quantile delta becomes a prediction interval.
#ifndef CONFCARD_CONFORMAL_SCORING_H_
#define CONFCARD_CONFORMAL_SCORING_H_

#include <memory>
#include <string>

#include "conformal/interval.h"

namespace confcard {

/// Scoring-function interface over (estimate, truth) in tuple counts.
class ScoringFunction {
 public:
  virtual ~ScoringFunction() = default;

  virtual std::string name() const = 0;

  /// Nonconformity of truth `y` under model output `estimate`. Larger
  /// means a worse prediction.
  virtual double Score(double estimate, double y) const = 0;

  /// The set {y : Score(estimate, y) <= delta} as an interval.
  virtual Interval Invert(double estimate, double delta) const = 0;
};

/// |y - est| — the paper's default. Fixed-width intervals.
class ResidualScore : public ScoringFunction {
 public:
  std::string name() const override { return "residual"; }
  double Score(double estimate, double y) const override;
  Interval Invert(double estimate, double delta) const override;
};

/// max(est/y, y/est) with both floored at one tuple (the paper's q-error
/// convention of replacing zero cardinalities with 1). Multiplicative
/// intervals [est/delta, est*delta]; the paper finds these tightest.
class QErrorScore : public ScoringFunction {
 public:
  std::string name() const override { return "q-error"; }
  double Score(double estimate, double y) const override;
  Interval Invert(double estimate, double delta) const override;
};

/// |y - est| / max(y, 1). Intervals [est/(1+delta), est/(1-delta)]
/// (upper bound unbounded when delta >= 1).
class RelativeErrorScore : public ScoringFunction {
 public:
  std::string name() const override { return "relative"; }
  double Score(double estimate, double y) const override;
  Interval Invert(double estimate, double delta) const override;
};

/// Scoring-function selector used by configs and benches.
enum class ScoreKind { kResidual, kQError, kRelative };

/// Factory for the builtin scoring functions.
std::shared_ptr<const ScoringFunction> MakeScoring(ScoreKind kind);

const char* ScoreKindToString(ScoreKind kind);

}  // namespace confcard

#endif  // CONFCARD_CONFORMAL_SCORING_H_
