// Conformalized quantile regression (Algorithm 4, after Romano et al.):
// two quantile-loss twins of the learned model predict the alpha/2 and
// 1-alpha/2 conditional quantiles; conformalization shifts the band by
// the calibrated quantile of the score max(Q_lo(x) - y, y - Q_hi(x)).
// (The paper's Algorithm 4 prints the score as max(Q_l - y, Q_u - y); we
// implement the correct CQR score from the original paper, of which the
// printed form is a typo.) Naturally adaptive and asymmetric; requires
// swapping the model's loss — the one "intrusive" method.
#ifndef CONFCARD_CONFORMAL_CQR_H_
#define CONFCARD_CONFORMAL_CQR_H_

#include <vector>

#include "common/status.h"
#include "conformal/interval.h"

namespace confcard {

/// CQR calibration/inference over the outputs of a lower/upper quantile
/// model pair. Training of the pair is the caller's job (the models need
/// the pinball loss; see SupervisedEstimator::SetLoss).
class ConformalizedQuantileRegression {
 public:
  explicit ConformalizedQuantileRegression(double alpha);

  /// Calibrates on (Q_lo(x_i), Q_hi(x_i), y_i) triples.
  Status Calibrate(const std::vector<double>& lo_estimates,
                   const std::vector<double>& hi_estimates,
                   const std::vector<double>& truths);

  /// PI = [Q_lo(x) - delta, Q_hi(x) + delta] (unclipped).
  Interval Predict(double lo_estimate, double hi_estimate) const;

  double delta() const { return delta_; }
  bool calibrated() const { return calibrated_; }
  /// Lower/upper quantile levels the pair should be trained at:
  /// alpha/2 and 1 - alpha/2.
  double lower_tau() const { return alpha_ / 2.0; }
  double upper_tau() const { return 1.0 - alpha_ / 2.0; }

 private:
  double alpha_;
  double delta_ = 0.0;
  bool calibrated_ = false;
};

}  // namespace confcard

#endif  // CONFCARD_CONFORMAL_CQR_H_
