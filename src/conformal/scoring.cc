#include "conformal/scoring.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace confcard {

double ResidualScore::Score(double estimate, double y) const {
  return std::fabs(y - estimate);
}

Interval ResidualScore::Invert(double estimate, double delta) const {
  return {estimate - delta, estimate + delta};
}

double QErrorScore::Score(double estimate, double y) const {
  const double e = std::max(estimate, 1.0);
  const double t = std::max(y, 1.0);
  return std::max(e / t, t / e);
}

Interval QErrorScore::Invert(double estimate, double delta) const {
  const double e = std::max(estimate, 1.0);
  if (!(delta >= 1.0)) delta = 1.0;  // q-error scores are always >= 1
  if (std::isinf(delta)) return Interval::Infinite();
  // Faithful inversion of the >= 1 flooring in Score: every y in [0, 1]
  // scores max(e, 1/e) = e, so once e <= delta the inversion set
  // includes all of [0, 1] and the bound below it — lo = e/delta > 0
  // would wrongly exclude zero-cardinality truths whose score is within
  // the quantile (the dominant post-drift miss mode in bench_drift).
  const double lo = e / delta;
  return {lo <= 1.0 ? 0.0 : lo, e * delta};
}

double RelativeErrorScore::Score(double estimate, double y) const {
  return std::fabs(y - estimate) / std::max(y, 1.0);
}

Interval RelativeErrorScore::Invert(double estimate, double delta) const {
  CONFCARD_DCHECK(delta >= 0.0);
  const double e = std::max(estimate, 0.0);
  Interval iv;
  iv.lo = e / (1.0 + delta);
  iv.hi = delta < 1.0 ? e / (1.0 - delta)
                      : std::numeric_limits<double>::infinity();
  return iv;
}

std::shared_ptr<const ScoringFunction> MakeScoring(ScoreKind kind) {
  switch (kind) {
    case ScoreKind::kResidual:
      return std::make_shared<ResidualScore>();
    case ScoreKind::kQError:
      return std::make_shared<QErrorScore>();
    case ScoreKind::kRelative:
      return std::make_shared<RelativeErrorScore>();
  }
  return std::make_shared<ResidualScore>();
}

const char* ScoreKindToString(ScoreKind kind) {
  switch (kind) {
    case ScoreKind::kResidual:
      return "residual";
    case ScoreKind::kQError:
      return "q-error";
    case ScoreKind::kRelative:
      return "relative";
  }
  return "unknown";
}

}  // namespace confcard
