#include "conformal/weighted.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace confcard {

WeightedConformal::WeightedConformal(
    std::shared_ptr<const ScoringFunction> scoring, WeightFn weight_fn,
    double alpha)
    : scoring_(std::move(scoring)),
      weight_fn_(std::move(weight_fn)),
      alpha_(alpha) {
  CONFCARD_CHECK(scoring_ != nullptr);
  CONFCARD_CHECK(static_cast<bool>(weight_fn_));
  CONFCARD_CHECK(alpha_ > 0.0 && alpha_ < 1.0);
}

Status WeightedConformal::Calibrate(
    const std::vector<std::vector<float>>& features,
    const std::vector<double>& estimates,
    const std::vector<double>& truths) {
  if (features.size() != estimates.size() ||
      features.size() != truths.size()) {
    return Status::InvalidArgument("calibration inputs size mismatch");
  }
  if (features.empty()) {
    return Status::InvalidArgument("empty calibration set");
  }
  std::vector<std::pair<double, double>> pairs(features.size());
  for (size_t i = 0; i < features.size(); ++i) {
    const double w = weight_fn_(features[i]);
    if (!(w >= 0.0) || !std::isfinite(w)) {
      return Status::InvalidArgument("weight function produced a bad value");
    }
    pairs[i] = {scoring_->Score(estimates[i], truths[i]), w};
  }
  std::sort(pairs.begin(), pairs.end());
  sorted_scores_.resize(pairs.size());
  sorted_weights_.resize(pairs.size());
  total_weight_ = 0.0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    sorted_scores_[i] = pairs[i].first;
    sorted_weights_[i] = pairs[i].second;
    total_weight_ += pairs[i].second;
  }
  if (total_weight_ <= 0.0) {
    return Status::InvalidArgument("all calibration weights are zero");
  }
  calibrated_ = true;
  return Status::OK();
}

double WeightedConformal::WeightedDelta(
    const std::vector<float>& features) const {
  CONFCARD_CHECK_MSG(calibrated_, "weighted CP not calibrated");
  const double w_test = weight_fn_(features);
  CONFCARD_CHECK(w_test >= 0.0 && std::isfinite(w_test));
  const double target = (1.0 - alpha_) * (total_weight_ + w_test);
  // The test point's own weight sits at score +infinity; accumulate
  // calibration mass until the target is reached.
  double acc = 0.0;
  for (size_t i = 0; i < sorted_scores_.size(); ++i) {
    acc += sorted_weights_[i];
    if (acc >= target) return sorted_scores_[i];
  }
  return std::numeric_limits<double>::infinity();
}

Interval WeightedConformal::Predict(
    double estimate, const std::vector<float>& features) const {
  const double d = WeightedDelta(features);
  if (std::isinf(d)) return Interval::Infinite();
  return scoring_->Invert(estimate, d);
}

double WeightedConformal::EffectiveSampleSize() const {
  CONFCARD_CHECK_MSG(calibrated_, "weighted CP not calibrated");
  double sum_sq = 0.0;
  for (double w : sorted_weights_) sum_sq += w * w;
  if (sum_sq <= 0.0) return 0.0;
  return total_weight_ * total_weight_ / sum_sq;
}

}  // namespace confcard
