// Split conformal prediction (Algorithm 2 of the paper): calibrate the
// (1-alpha) conformal quantile delta of the scores on a held-out
// calibration set; the PI for any new query is the inversion of delta
// around the model estimate. Distribution-free coverage >= 1 - alpha
// under exchangeability.
#ifndef CONFCARD_CONFORMAL_SPLIT_H_
#define CONFCARD_CONFORMAL_SPLIT_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "conformal/interval.h"
#include "conformal/scoring.h"

namespace confcard {

/// Split conformal predictor (S-CP).
class SplitConformal {
 public:
  /// `alpha` is the miscoverage level (coverage = 1 - alpha).
  SplitConformal(std::shared_ptr<const ScoringFunction> scoring,
                 double alpha);

  /// Computes delta from calibration pairs (model estimate, truth).
  Status Calibrate(const std::vector<double>& estimates,
                   const std::vector<double>& truths);

  /// PI for a new estimate. Unclipped; apply ClipToCardinality at the
  /// call site where N is known.
  Interval Predict(double estimate) const;

  bool calibrated() const { return calibrated_; }
  double delta() const { return delta_; }
  double alpha() const { return alpha_; }
  const ScoringFunction& scoring() const { return *scoring_; }
  /// Shared handle for composing predictors (e.g. per-shard online
  /// recalibrators) over the same scoring function.
  std::shared_ptr<const ScoringFunction> scoring_ptr() const {
    return scoring_;
  }

 private:
  std::shared_ptr<const ScoringFunction> scoring_;
  double alpha_;
  double delta_ = 0.0;
  bool calibrated_ = false;
};

}  // namespace confcard

#endif  // CONFCARD_CONFORMAL_SPLIT_H_
