#include "conformal/locally_weighted.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace confcard {

LocallyWeightedConformal::LocallyWeightedConformal(Options options)
    : options_(options) {
  CONFCARD_CHECK(options_.alpha > 0.0 && options_.alpha < 1.0);
  CONFCARD_CHECK(options_.min_difficulty > 0.0);
}

Status LocallyWeightedConformal::FitDifficulty(
    const std::vector<std::vector<float>>& features,
    const std::vector<double>& estimates,
    const std::vector<double>& truths) {
  if (features.size() != estimates.size() ||
      features.size() != truths.size()) {
    return Status::InvalidArgument("difficulty inputs size mismatch");
  }
  if (features.empty()) {
    return Status::InvalidArgument("empty difficulty training set");
  }
  obs::TraceSpan span("calibrate.lw-s-cp.fit_difficulty");
  const size_t dim = features.front().size();
  std::vector<float> X;
  X.reserve(features.size() * dim);
  std::vector<double> y(features.size());
  for (size_t i = 0; i < features.size(); ++i) {
    if (features[i].size() != dim) {
      return Status::InvalidArgument("ragged feature matrix");
    }
    X.insert(X.end(), features[i].begin(), features[i].end());
    y[i] = std::log1p(std::fabs(truths[i] - estimates[i]));
  }
  gbdt_ = std::make_unique<gbdt::GbdtRegressor>(options_.gbdt);
  CONFCARD_RETURN_NOT_OK(gbdt_->Fit(X, dim, y));
  difficulty_fn_ = [this](const std::vector<float>& x) {
    return std::expm1(std::max(0.0, gbdt_->Predict(x)));
  };
  return Status::OK();
}

void LocallyWeightedConformal::SetDifficultyFn(
    std::function<double(const std::vector<float>&)> fn) {
  difficulty_fn_ = std::move(fn);
}

double LocallyWeightedConformal::Difficulty(
    const std::vector<float>& features) const {
  CONFCARD_CHECK_MSG(static_cast<bool>(difficulty_fn_),
                     "difficulty model not fitted");
  return std::max(options_.min_difficulty, difficulty_fn_(features));
}

Status LocallyWeightedConformal::Calibrate(
    const std::vector<std::vector<float>>& features,
    const std::vector<double>& estimates,
    const std::vector<double>& truths) {
  if (!difficulty_fn_) {
    return Status::FailedPrecondition("difficulty model not fitted");
  }
  if (features.size() != estimates.size() ||
      features.size() != truths.size()) {
    return Status::InvalidArgument("calibration inputs size mismatch");
  }
  if (features.empty()) {
    return Status::InvalidArgument("empty calibration set");
  }
  obs::TraceSpan span("calibrate.lw-s-cp");
  obs::Metrics().GetGauge("conformal.lw-s-cp.calib_size")
      .Set(static_cast<double>(features.size()));
  std::vector<double> scaled(features.size());
  {
    obs::TraceSpan score_span("score");
    for (size_t i = 0; i < features.size(); ++i) {
      scaled[i] =
          std::fabs(truths[i] - estimates[i]) / Difficulty(features[i]);
    }
    obs::Metrics().GetHistogram("conformal.lw-s-cp.score_us")
        .Record(score_span.ElapsedMicros());
  }
  delta_ = ConformalQuantile(std::move(scaled), options_.alpha);
  calibrated_ = true;
  obs::Metrics().GetCounter("conformal.lw-s-cp.calibrations").Increment();
  return Status::OK();
}

Interval LocallyWeightedConformal::Predict(
    double estimate, const std::vector<float>& features) const {
  CONFCARD_CHECK_MSG(calibrated_, "LW-S-CP not calibrated");
  const double half = delta_ * Difficulty(features);
  return {estimate - half, estimate + half};
}

}  // namespace confcard
