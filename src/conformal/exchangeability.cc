#include "conformal/exchangeability.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace confcard {
namespace {

double NextUniform(uint64_t& state) {
  // splitmix64-based uniform in (0, 1).
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return (static_cast<double>(z >> 11) + 0.5) * 0x1.0p-53;
}

}  // namespace

ExchangeabilityTest::ExchangeabilityTest(std::vector<double> epsilons,
                                         uint64_t seed)
    : epsilons_(std::move(epsilons)), rng_state_(seed) {
  CONFCARD_CHECK(!epsilons_.empty());
  for (double e : epsilons_) CONFCARD_CHECK(e > 0.0 && e < 1.0);
  log_m_.assign(epsilons_.size(), 0.0);
}

double ExchangeabilityTest::Observe(double score) {
  // Conformal p-value with randomized tie-breaking:
  // p = (#{s_i > s} + theta * (#{s_i == s} + 1)) / (t + 1).
  const auto lo = std::lower_bound(history_.begin(), history_.end(), score);
  const auto hi = std::upper_bound(history_.begin(), history_.end(), score);
  const double greater = static_cast<double>(history_.end() - hi);
  const double equal = static_cast<double>(hi - lo);
  const double theta = NextUniform(rng_state_);
  const double t = static_cast<double>(history_.size()) + 1.0;
  double p = (greater + theta * (equal + 1.0)) / t;
  p = std::clamp(p, 1e-12, 1.0);

  for (size_t i = 0; i < epsilons_.size(); ++i) {
    log_m_[i] += std::log(epsilons_[i]) + (epsilons_[i] - 1.0) * std::log(p);
  }
  history_.insert(lo, score);
  return p;
}

double ExchangeabilityTest::LogMartingale() const {
  // log of the average of exp(log_m_i), computed stably.
  double mx = log_m_[0];
  for (double v : log_m_) mx = std::max(mx, v);
  double sum = 0.0;
  for (double v : log_m_) sum += std::exp(v - mx);
  return mx + std::log(sum / static_cast<double>(log_m_.size()));
}

bool ExchangeabilityTest::Reject(double level) const {
  CONFCARD_CHECK(level > 0.0 && level < 1.0);
  return LogMartingale() > std::log(1.0 / level);
}

}  // namespace confcard
