// Online conformal prediction (Section IV "Incorporating Workload
// Information" and the Figure 8 experiment): after a query executes, its
// (estimate, truth) pair is appended to the calibration set, which
// remains exchangeable, so PIs tighten as the calibration set adapts to
// the live workload. An optional sliding window keeps only the most
// recent scores (the paper's "last 24 hours" variant).
#ifndef CONFCARD_CONFORMAL_ONLINE_H_
#define CONFCARD_CONFORMAL_ONLINE_H_

#include <deque>
#include <memory>
#include <vector>

#include "common/status.h"
#include "conformal/interval.h"
#include "conformal/scoring.h"

namespace confcard {

/// Split conformal prediction over a growing (or sliding) calibration
/// multiset. Observe() is O(log n) per update; Predict() is O(1).
class OnlineConformal {
 public:
  struct Options {
    double alpha = 0.1;
    /// Keep at most this many most-recent scores (0 = unbounded).
    size_t window = 0;
  };

  OnlineConformal(std::shared_ptr<const ScoringFunction> scoring,
                  Options options);

  /// Seeds the calibration set with an initial batch.
  Status Warmup(const std::vector<double>& estimates,
                const std::vector<double>& truths);

  /// Adds one executed query's (estimate, truth) to the calibration set.
  void Observe(double estimate, double truth);

  /// PI under the current calibration set. Infinite until at least
  /// ceil(1/alpha) - 1 scores have been observed.
  Interval Predict(double estimate) const;

  /// Current conformal quantile delta.
  double delta() const;

  size_t size() const { return recency_.size(); }

 private:
  std::shared_ptr<const ScoringFunction> scoring_;
  Options options_;
  // Scores in arrival order (for window eviction) and in sorted order
  // (multiset semantics via a sorted vector) for O(log n) quantiles.
  std::deque<double> recency_;
  std::vector<double> sorted_;
};

}  // namespace confcard

#endif  // CONFCARD_CONFORMAL_ONLINE_H_
