// Online conformal prediction (Section IV "Incorporating Workload
// Information" and the Figure 8 experiment): after a query executes, its
// (estimate, truth) pair is appended to the calibration set, which
// remains exchangeable, so PIs tighten as the calibration set adapts to
// the live workload. An optional sliding window keeps only the most
// recent scores (the paper's "last 24 hours" variant).
//
// Observe() additionally publishes rolling monitors through the metrics
// registry — prequential coverage and mean width over the last
// `monitor_window` observations, a residual-drift gauge, window
// occupancy, and eviction counts — so the Fig. 8/11 shift experiments
// expose their degradation live instead of only in final tables. See
// docs/OBSERVABILITY.md ("conformal.online.*").
//
// Windowed instances are allocation-free after construction: the recency
// order lives in a fixed ring buffer and the sorted multiset in a vector
// reserved one past the window (an insert transiently holds window + 1
// scores before the eviction erase). This is what lets the serving
// feedback path recalibrate per micro-batch under a zero-steady-state-
// allocation gate.
#ifndef CONFCARD_CONFORMAL_ONLINE_H_
#define CONFCARD_CONFORMAL_ONLINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "conformal/interval.h"
#include "conformal/scoring.h"
#include "obs/rolling.h"

namespace confcard {

/// Split conformal prediction over a growing (or sliding) calibration
/// multiset. Observe() is O(log n) per update; Predict() is O(1).
class OnlineConformal {
 public:
  struct Options {
    double alpha = 0.1;
    /// Keep at most this many most-recent scores (0 = unbounded).
    size_t window = 0;
    /// Rolling-monitor horizon: coverage/width/drift gauges average over
    /// this many most-recent observations.
    size_t monitor_window = 256;
    /// Label recorded as the `model` field of per-query events emitted
    /// from Observe (the estimator is not visible at this layer).
    std::string estimator_label = "online";
    /// When false, Observe neither sets conformal.online.* gauges nor
    /// emits per-query events. Serving shards each own a recalibrator
    /// and publish their own serve.drift.* view instead — concurrent
    /// last-writer gauge races would make runs non-replayable, and the
    /// event append allocates.
    bool publish_metrics = true;
  };

  OnlineConformal(std::shared_ptr<const ScoringFunction> scoring,
                  Options options);

  /// Seeds the calibration set with an initial batch.
  Status Warmup(const std::vector<double>& estimates,
                const std::vector<double>& truths);

  /// Adds one executed query's (estimate, truth) to the calibration set.
  /// Prequentially scores the pre-update interval against `truth` for
  /// the rolling monitors, and appends a per-query event when the event
  /// log is armed.
  void Observe(double estimate, double truth);

  /// PI under the current calibration set. Infinite until at least
  /// ceil(1/alpha) - 1 scores have been observed.
  Interval Predict(double estimate) const;

  /// Current conformal quantile delta.
  double delta() const;

  /// Drops all but the newest `keep_last` calibration scores (stage-1
  /// drift recalibration: stale pre-drift scores stop diluting the
  /// quantile). Lifetime counters and rolling monitors are untouched.
  /// Allocation-free in windowed mode.
  void ResetWindowTo(size_t keep_last);

  size_t size() const {
    return options_.window > 0 ? ring_size_ : recency_.size();
  }

  /// Lifetime observation count (never decremented by eviction).
  uint64_t observed() const { return observed_; }
  /// Prequential coverage over the last monitor_window observations.
  double rolling_coverage() const { return coverage_window_.Mean(); }
  /// Observations currently in the rolling coverage window.
  size_t rolling_observations() const { return coverage_window_.size(); }
  /// Mean finite interval width over the same horizon.
  double rolling_width() const { return width_window_.Mean(); }
  /// Rolling mean score divided by lifetime mean score (~1 when the
  /// stream is stationary; rises under residual drift).
  double score_drift() const;

  const Options& options() const { return options_; }
  const ScoringFunction& scoring() const { return *scoring_; }

 private:
  /// Oldest-first access into the windowed ring.
  double RingAt(size_t i) const {
    return ring_[(ring_head_ + i) % options_.window];
  }

  std::shared_ptr<const ScoringFunction> scoring_;
  Options options_;
  // Scores in arrival order: a fixed ring buffer in windowed mode, an
  // unbounded deque otherwise. The sorted multiset (sorted vector, for
  // O(log n) quantiles) is shared by both modes.
  std::deque<double> recency_;
  std::vector<double> ring_;
  size_t ring_head_ = 0;
  size_t ring_size_ = 0;
  std::vector<double> sorted_;
  // Rolling monitors (prequential: judged before the update).
  obs::RollingWindow coverage_window_;
  obs::RollingWindow width_window_;
  obs::RollingWindow score_window_;
  uint64_t observed_ = 0;
  double score_sum_ = 0.0;
};

}  // namespace confcard

#endif  // CONFCARD_CONFORMAL_ONLINE_H_
