// Online conformal prediction (Section IV "Incorporating Workload
// Information" and the Figure 8 experiment): after a query executes, its
// (estimate, truth) pair is appended to the calibration set, which
// remains exchangeable, so PIs tighten as the calibration set adapts to
// the live workload. An optional sliding window keeps only the most
// recent scores (the paper's "last 24 hours" variant).
//
// Observe() additionally publishes rolling monitors through the metrics
// registry — prequential coverage and mean width over the last
// `monitor_window` observations, a residual-drift gauge, window
// occupancy, and eviction counts — so the Fig. 8/11 shift experiments
// expose their degradation live instead of only in final tables. See
// docs/OBSERVABILITY.md ("conformal.online.*").
#ifndef CONFCARD_CONFORMAL_ONLINE_H_
#define CONFCARD_CONFORMAL_ONLINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "conformal/interval.h"
#include "conformal/scoring.h"
#include "obs/rolling.h"

namespace confcard {

/// Split conformal prediction over a growing (or sliding) calibration
/// multiset. Observe() is O(log n) per update; Predict() is O(1).
class OnlineConformal {
 public:
  struct Options {
    double alpha = 0.1;
    /// Keep at most this many most-recent scores (0 = unbounded).
    size_t window = 0;
    /// Rolling-monitor horizon: coverage/width/drift gauges average over
    /// this many most-recent observations.
    size_t monitor_window = 256;
    /// Label recorded as the `model` field of per-query events emitted
    /// from Observe (the estimator is not visible at this layer).
    std::string estimator_label = "online";
  };

  OnlineConformal(std::shared_ptr<const ScoringFunction> scoring,
                  Options options);

  /// Seeds the calibration set with an initial batch.
  Status Warmup(const std::vector<double>& estimates,
                const std::vector<double>& truths);

  /// Adds one executed query's (estimate, truth) to the calibration set.
  /// Prequentially scores the pre-update interval against `truth` for
  /// the rolling monitors, and appends a per-query event when the event
  /// log is armed.
  void Observe(double estimate, double truth);

  /// PI under the current calibration set. Infinite until at least
  /// ceil(1/alpha) - 1 scores have been observed.
  Interval Predict(double estimate) const;

  /// Current conformal quantile delta.
  double delta() const;

  size_t size() const { return recency_.size(); }

  /// Lifetime observation count (never decremented by eviction).
  uint64_t observed() const { return observed_; }
  /// Prequential coverage over the last monitor_window observations.
  double rolling_coverage() const { return coverage_window_.Mean(); }
  /// Mean finite interval width over the same horizon.
  double rolling_width() const { return width_window_.Mean(); }
  /// Rolling mean score divided by lifetime mean score (~1 when the
  /// stream is stationary; rises under residual drift).
  double score_drift() const;

 private:
  std::shared_ptr<const ScoringFunction> scoring_;
  Options options_;
  // Scores in arrival order (for window eviction) and in sorted order
  // (multiset semantics via a sorted vector) for O(log n) quantiles.
  std::deque<double> recency_;
  std::vector<double> sorted_;
  // Rolling monitors (prequential: judged before the update).
  obs::RollingWindow coverage_window_;
  obs::RollingWindow width_window_;
  obs::RollingWindow score_window_;
  uint64_t observed_ = 0;
  double score_sum_ = 0.0;
};

}  // namespace confcard

#endif  // CONFCARD_CONFORMAL_ONLINE_H_
