// Localized conformal prediction (after Guan, and reference [15] of the
// paper): instead of one global quantile, the delta for a new query is
// computed from the scores of its k nearest calibration queries in
// feature space. Queries in well-modeled regions get tight intervals;
// queries near hard regions inherit their neighbors' larger scores. The
// paper's Section V-D names this the most promising direction for
// tighter PIs.
//
// Guarantee note: the exact finite-sample guarantee of Guan's LCP needs
// a careful localization-aware rank correction; this implementation uses
// the standard practical variant (conformal rank over the k-NN score
// multiset, with k acting as the effective calibration size), whose
// coverage we validate empirically in tests and benches.
#ifndef CONFCARD_CONFORMAL_LOCALIZED_H_
#define CONFCARD_CONFORMAL_LOCALIZED_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "conformal/interval.h"
#include "conformal/scoring.h"

namespace confcard {

/// k-nearest-neighbor localized conformal predictor.
class LocalizedConformal {
 public:
  struct Options {
    double alpha = 0.1;
    /// Neighborhood size. Must satisfy k >= ceil(1/alpha) - 1 for finite
    /// deltas; larger k interpolates toward global S-CP.
    size_t k = 200;
  };

  LocalizedConformal(std::shared_ptr<const ScoringFunction> scoring,
                     Options options);

  /// Stores the calibration set (features are copied; L2 distances).
  Status Calibrate(std::vector<std::vector<float>> features,
                   const std::vector<double>& estimates,
                   const std::vector<double>& truths);

  /// PI from the conformal quantile over the k nearest calibration
  /// scores. Unclipped.
  Interval Predict(double estimate,
                   const std::vector<float>& features) const;

  /// The local delta used for `features` (exposed for tests).
  double LocalDelta(const std::vector<float>& features) const;

  bool calibrated() const { return calibrated_; }
  size_t size() const { return scores_.size(); }

 private:
  std::shared_ptr<const ScoringFunction> scoring_;
  Options options_;
  std::vector<std::vector<float>> features_;
  std::vector<double> scores_;
  bool calibrated_ = false;
};

}  // namespace confcard

#endif  // CONFCARD_CONFORMAL_LOCALIZED_H_
