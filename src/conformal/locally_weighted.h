// Locally weighted split conformal prediction (Algorithm 3): residuals
// are normalized by a per-query difficulty U(X) before calibration, so
// the PI width delta * U(X) adapts to the query — narrow for easy
// queries, wide for hard ones. The paper instantiates U(X) with an
// xgboost model of the conditional mean absolute deviation; the
// alternatives it mentions (ensemble variance, input perturbation) are
// supported through a custom difficulty function and exercised by the
// U(X) ablation bench.
#ifndef CONFCARD_CONFORMAL_LOCALLY_WEIGHTED_H_
#define CONFCARD_CONFORMAL_LOCALLY_WEIGHTED_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "conformal/interval.h"
#include "gbdt/gbdt.h"

namespace confcard {

/// Locally weighted split conformal predictor (LW-S-CP). Uses the
/// absolute-residual score normalized by U(X), per the paper.
class LocallyWeightedConformal {
 public:
  struct Options {
    double alpha = 0.1;
    /// GBDT hyper-parameters for the default (MAD-regression) U(X).
    gbdt::GbdtConfig gbdt;
    /// Difficulty floor: keeps scaled residuals finite and PIs non-
    /// degenerate where the difficulty model predicts ~0 error.
    double min_difficulty = 1.0;
  };

  explicit LocallyWeightedConformal(Options options);

  /// Fits the default difficulty model U(X) = GBDT(X -> |residual|) on
  /// the *training* split (estimates/truths under the trained model f).
  /// Targets are log1p(|residual|) internally for robustness to the
  /// heavy-tailed residual distribution of cardinality models.
  Status FitDifficulty(const std::vector<std::vector<float>>& features,
                       const std::vector<double>& estimates,
                       const std::vector<double>& truths);

  /// Replaces the difficulty model with a caller-supplied U(X)
  /// (ensemble variance, perturbation variance, ...).
  void SetDifficultyFn(std::function<double(const std::vector<float>&)> fn);

  /// Calibrates delta on scaled residuals |y - est| / U(X).
  Status Calibrate(const std::vector<std::vector<float>>& features,
                   const std::vector<double>& estimates,
                   const std::vector<double>& truths);

  /// PI: [est - delta*U(x), est + delta*U(x)] (unclipped).
  Interval Predict(double estimate, const std::vector<float>& features) const;

  /// The difficulty U(x) used by Predict (exposed for tests/ablation).
  double Difficulty(const std::vector<float>& features) const;

  double delta() const { return delta_; }
  bool calibrated() const { return calibrated_; }

 private:
  Options options_;
  std::function<double(const std::vector<float>&)> difficulty_fn_;
  std::unique_ptr<gbdt::GbdtRegressor> gbdt_;
  double delta_ = 0.0;
  bool calibrated_ = false;
};

}  // namespace confcard

#endif  // CONFCARD_CONFORMAL_LOCALLY_WEIGHTED_H_
