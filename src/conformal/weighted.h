// Weighted split conformal prediction for covariate shift (Tibshirani et
// al., NeurIPS 2019). Figure 11 of the paper shows that when the test
// workload is not exchangeable with the calibration set, coverage is
// lost. If the shift is a covariate shift with known (or estimated)
// likelihood ratio w(x) = p_test(x) / p_calib(x), coverage is restored
// by replacing the empirical score quantile with a w-weighted quantile:
//   delta(x) = inf{ t : sum_{i: s_i <= t} w(x_i) + w(x)
//                       >= (1 - alpha) * (sum_i w(x_i) + w(x)) }.
// This implements the workload-shift remedy the paper's discussion
// (Sections IV and V-D) calls for.
#ifndef CONFCARD_CONFORMAL_WEIGHTED_H_
#define CONFCARD_CONFORMAL_WEIGHTED_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "conformal/interval.h"
#include "conformal/scoring.h"

namespace confcard {

/// Weighted split conformal predictor under covariate shift.
class WeightedConformal {
 public:
  /// Likelihood ratio w(x) = p_test(x) / p_calib(x), up to a constant
  /// factor. Must be non-negative and finite.
  using WeightFn = std::function<double(const std::vector<float>&)>;

  WeightedConformal(std::shared_ptr<const ScoringFunction> scoring,
                    WeightFn weight_fn, double alpha);

  /// Stores calibration scores and weights.
  Status Calibrate(const std::vector<std::vector<float>>& features,
                   const std::vector<double>& estimates,
                   const std::vector<double>& truths);

  /// PI with the weighted quantile evaluated at the test point's weight.
  /// Unclipped; returns the trivial interval when the test weight
  /// dominates the calibration mass (too little effective calibration
  /// data under the shift).
  Interval Predict(double estimate,
                   const std::vector<float>& features) const;

  /// The weighted delta for a test point (exposed for tests).
  double WeightedDelta(const std::vector<float>& features) const;

  /// Effective sample size of the weighted calibration set,
  /// (sum w)^2 / sum w^2 — a diagnostic for how much the shift costs.
  double EffectiveSampleSize() const;

  bool calibrated() const { return calibrated_; }

 private:
  std::shared_ptr<const ScoringFunction> scoring_;
  WeightFn weight_fn_;
  double alpha_;
  // Scores sorted ascending with their weights aligned.
  std::vector<double> sorted_scores_;
  std::vector<double> sorted_weights_;
  double total_weight_ = 0.0;
  bool calibrated_ = false;
};

}  // namespace confcard

#endif  // CONFCARD_CONFORMAL_WEIGHTED_H_
