// Mondrian (group-conditional) split conformal prediction. The plain
// S-CP guarantee is *marginal*: averaged over the whole workload. When
// queries fall into recognizable groups with very different error
// profiles (few vs many predicates, small vs large selectivity bands),
// marginal coverage can hide systematic under-coverage inside a group.
// Mondrian CP calibrates one delta per group, restoring the guarantee
// within every group that has enough calibration mass — one of the
// conditional-validity directions the paper's Section V-D points to.
#ifndef CONFCARD_CONFORMAL_MONDRIAN_H_
#define CONFCARD_CONFORMAL_MONDRIAN_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "conformal/interval.h"
#include "conformal/scoring.h"

namespace confcard {

/// Group-conditional split conformal predictor.
class MondrianConformal {
 public:
  /// Maps a query's feature vector to its group id. Must be stable: the
  /// same features always map to the same group.
  using GroupFn = std::function<int(const std::vector<float>&)>;

  struct Options {
    double alpha = 0.1;
    /// Groups with fewer calibration points than this fall back to the
    /// global (marginal) delta — per-group quantiles need
    /// ceil(1/alpha) - 1 points to be finite.
    size_t min_group_size = 30;
  };

  MondrianConformal(std::shared_ptr<const ScoringFunction> scoring,
                    GroupFn group_fn, Options options);

  /// Calibrates the per-group and global deltas.
  Status Calibrate(const std::vector<std::vector<float>>& features,
                   const std::vector<double>& estimates,
                   const std::vector<double>& truths);

  /// PI using the group's delta (global fallback for unseen/small
  /// groups). Unclipped.
  Interval Predict(double estimate,
                   const std::vector<float>& features) const;

  /// Delta for a specific group (global fallback applies).
  double DeltaForGroup(int group) const;
  double global_delta() const { return global_delta_; }
  size_t num_groups() const { return group_delta_.size(); }
  bool calibrated() const { return calibrated_; }

 private:
  std::shared_ptr<const ScoringFunction> scoring_;
  GroupFn group_fn_;
  Options options_;
  double global_delta_ = 0.0;
  std::unordered_map<int, double> group_delta_;
  bool calibrated_ = false;
};

/// Convenience group function: the number of constrained columns of a
/// FlatQueryFeaturizer vector (feature layout: 5 per column + count).
MondrianConformal::GroupFn GroupByPredicateCount(size_t num_columns);

}  // namespace confcard

#endif  // CONFCARD_CONFORMAL_MONDRIAN_H_
