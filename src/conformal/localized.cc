#include "conformal/localized.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace confcard {
namespace {

double SquaredL2(const std::vector<float>& a, const std::vector<float>& b) {
  CONFCARD_DCHECK(a.size() == b.size());
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = static_cast<double>(a[i]) - b[i];
    d += diff * diff;
  }
  return d;
}

}  // namespace

LocalizedConformal::LocalizedConformal(
    std::shared_ptr<const ScoringFunction> scoring, Options options)
    : scoring_(std::move(scoring)), options_(options) {
  CONFCARD_CHECK(scoring_ != nullptr);
  CONFCARD_CHECK(options_.alpha > 0.0 && options_.alpha < 1.0);
  CONFCARD_CHECK(options_.k > 0);
}

Status LocalizedConformal::Calibrate(
    std::vector<std::vector<float>> features,
    const std::vector<double>& estimates,
    const std::vector<double>& truths) {
  if (features.size() != estimates.size() ||
      features.size() != truths.size()) {
    return Status::InvalidArgument("calibration inputs size mismatch");
  }
  if (features.empty()) {
    return Status::InvalidArgument("empty calibration set");
  }
  const size_t dim = features.front().size();
  for (const auto& f : features) {
    if (f.size() != dim) {
      return Status::InvalidArgument("ragged feature matrix");
    }
  }
  features_ = std::move(features);
  scores_.resize(features_.size());
  for (size_t i = 0; i < features_.size(); ++i) {
    scores_[i] = scoring_->Score(estimates[i], truths[i]);
  }
  calibrated_ = true;
  return Status::OK();
}

double LocalizedConformal::LocalDelta(
    const std::vector<float>& features) const {
  CONFCARD_CHECK_MSG(calibrated_, "localized CP not calibrated");
  const size_t k = std::min(options_.k, scores_.size());
  // Partial selection of the k nearest calibration points.
  std::vector<std::pair<double, size_t>> dist(scores_.size());
  for (size_t i = 0; i < scores_.size(); ++i) {
    dist[i] = {SquaredL2(features, features_[i]), i};
  }
  std::nth_element(dist.begin(), dist.begin() + static_cast<long>(k - 1),
                   dist.end());
  std::vector<double> local;
  local.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    local.push_back(scores_[dist[i].second]);
  }
  return ConformalQuantile(std::move(local), options_.alpha);
}

Interval LocalizedConformal::Predict(
    double estimate, const std::vector<float>& features) const {
  return scoring_->Invert(estimate, LocalDelta(features));
}

}  // namespace confcard
