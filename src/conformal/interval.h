// Prediction intervals over cardinalities (tuple counts).
#ifndef CONFCARD_CONFORMAL_INTERVAL_H_
#define CONFCARD_CONFORMAL_INTERVAL_H_

#include <algorithm>
#include <limits>

namespace confcard {

/// A closed interval [lo, hi] on the cardinality axis.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  double width() const { return hi - lo; }
  bool Contains(double v) const { return v >= lo && v <= hi; }

  /// The trivial (always-valid, useless) interval.
  static Interval Infinite() {
    return {-std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()};
  }
};

/// The paper's "common sense post-processing": cardinality is bounded by
/// [0, N], so intervals are clipped to that range (Section V-A).
inline Interval ClipToCardinality(Interval iv, double num_rows) {
  iv.lo = std::clamp(iv.lo, 0.0, num_rows);
  iv.hi = std::clamp(iv.hi, 0.0, num_rows);
  if (iv.hi < iv.lo) iv.hi = iv.lo;
  return iv;
}

}  // namespace confcard

#endif  // CONFCARD_CONFORMAL_INTERVAL_H_
