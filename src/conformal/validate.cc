#include "conformal/validate.h"

#include <cmath>
#include <string>

namespace confcard {

Status ValidateAlpha(double alpha) {
  if (!std::isfinite(alpha) || alpha <= 0.0 || alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1); got " +
                                   std::to_string(alpha));
  }
  return Status::OK();
}

Status ValidateFolds(int k) {
  if (k < 2) {
    return Status::InvalidArgument("jk_folds must be >= 2; got " +
                                   std::to_string(k));
  }
  return Status::OK();
}

}  // namespace confcard
