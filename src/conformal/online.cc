#include "conformal/online.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace confcard {

OnlineConformal::OnlineConformal(
    std::shared_ptr<const ScoringFunction> scoring, Options options)
    : scoring_(std::move(scoring)),
      options_(std::move(options)),
      coverage_window_(options_.monitor_window),
      width_window_(options_.monitor_window),
      score_window_(options_.monitor_window) {
  CONFCARD_CHECK(scoring_ != nullptr);
  CONFCARD_CHECK(options_.alpha > 0.0 && options_.alpha < 1.0);
  if (options_.window > 0) {
    ring_.resize(options_.window);
    // An Observe at full occupancy inserts before it evicts, so the
    // sorted multiset transiently holds window + 1 scores.
    sorted_.reserve(options_.window + 1);
  }
}

Status OnlineConformal::Warmup(const std::vector<double>& estimates,
                               const std::vector<double>& truths) {
  if (estimates.size() != truths.size()) {
    return Status::InvalidArgument("estimates/truths size mismatch");
  }
  for (size_t i = 0; i < estimates.size(); ++i) {
    Observe(estimates[i], truths[i]);
  }
  return Status::OK();
}

double OnlineConformal::score_drift() const {
  if (observed_ == 0) return 1.0;
  const double lifetime_mean = score_sum_ / static_cast<double>(observed_);
  if (lifetime_mean <= 0.0) return 1.0;
  return score_window_.Mean() / lifetime_mean;
}

void OnlineConformal::Observe(double estimate, double truth) {
  static obs::Counter& observations =
      obs::Metrics().GetCounter("conformal.online.observations");
  static obs::Counter& evictions =
      obs::Metrics().GetCounter("conformal.online.evictions");

  obs::EventLog& elog = obs::EventLog::Instance();
  const bool log_events = options_.publish_metrics && elog.enabled();
  const double t0 = log_events ? obs::TraceNowMicros() : 0.0;

  // Prequential monitoring: judge the interval the caller would have
  // been given for this query BEFORE the update absorbs its truth.
  const Interval iv = Predict(estimate);
  coverage_window_.Push(iv.Contains(truth) ? 1.0 : 0.0);
  if (std::isfinite(iv.width())) width_window_.Push(iv.width());

  observations.Increment();
  const double score = scoring_->Score(estimate, truth);
  score_window_.Push(score);
  score_sum_ += score;
  ++observed_;

  sorted_.insert(std::lower_bound(sorted_.begin(), sorted_.end(), score),
                 score);
  if (options_.window > 0) {
    double evicted = 0.0;
    bool evict = false;
    if (ring_size_ == options_.window) {
      evicted = ring_[ring_head_];
      ring_[ring_head_] = score;
      ring_head_ = (ring_head_ + 1) % options_.window;
      evict = true;
    } else {
      ring_[(ring_head_ + ring_size_) % options_.window] = score;
      ++ring_size_;
    }
    if (evict) {
      auto it = std::lower_bound(sorted_.begin(), sorted_.end(), evicted);
      CONFCARD_DCHECK(it != sorted_.end() && *it == evicted);
      sorted_.erase(it);
      evictions.Increment();
    }
  } else {
    recency_.push_back(score);
  }

  if (options_.publish_metrics) {
    static obs::Gauge& occupancy =
        obs::Metrics().GetGauge("conformal.online.window_occupancy");
    static obs::Gauge& rolling_cov =
        obs::Metrics().GetGauge("conformal.online.rolling_coverage");
    static obs::Gauge& rolling_width =
        obs::Metrics().GetGauge("conformal.online.rolling_width");
    static obs::Gauge& drift =
        obs::Metrics().GetGauge("conformal.online.score_drift");
    occupancy.Set(static_cast<double>(size()));
    rolling_cov.Set(coverage_window_.Mean());
    if (width_window_.size() > 0) rolling_width.Set(width_window_.Mean());
    drift.Set(score_drift());
  }

  if (log_events) {
    obs::QueryEvent e;
    e.run_seq = 0;  // the online stream has no batch finalization
    e.query_id = observed_ - 1;
    e.model = options_.estimator_label;
    e.method = "online-s-cp";
    e.alpha = options_.alpha;
    e.estimate = estimate;
    e.lo = iv.lo;
    e.hi = iv.hi;
    e.truth = truth;
    e.latency_us = obs::TraceNowMicros() - t0;
    elog.Append(e);
  }
}

void OnlineConformal::ResetWindowTo(size_t keep_last) {
  if (options_.window > 0) {
    const size_t keep = std::min(keep_last, ring_size_);
    const size_t drop = ring_size_ - keep;
    ring_head_ = (ring_head_ + drop) % options_.window;
    ring_size_ = keep;
    sorted_.resize(keep);
    for (size_t i = 0; i < keep; ++i) sorted_[i] = RingAt(i);
  } else {
    const size_t keep = std::min(keep_last, recency_.size());
    recency_.erase(recency_.begin(),
                   recency_.end() - static_cast<ptrdiff_t>(keep));
    sorted_.assign(recency_.begin(), recency_.end());
  }
  std::sort(sorted_.begin(), sorted_.end());
}

double OnlineConformal::delta() const {
  const size_t n = sorted_.size();
  if (n == 0) return std::numeric_limits<double>::infinity();
  const size_t rank = ConformalRank(n, options_.alpha);
  if (rank > n) return std::numeric_limits<double>::infinity();
  return sorted_[rank - 1];
}

Interval OnlineConformal::Predict(double estimate) const {
  const double d = delta();
  if (std::isinf(d)) return Interval::Infinite();
  return scoring_->Invert(estimate, d);
}

}  // namespace confcard
