#include "conformal/online.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"
#include "obs/metrics.h"

namespace confcard {

OnlineConformal::OnlineConformal(
    std::shared_ptr<const ScoringFunction> scoring, Options options)
    : scoring_(std::move(scoring)), options_(options) {
  CONFCARD_CHECK(scoring_ != nullptr);
  CONFCARD_CHECK(options_.alpha > 0.0 && options_.alpha < 1.0);
}

Status OnlineConformal::Warmup(const std::vector<double>& estimates,
                               const std::vector<double>& truths) {
  if (estimates.size() != truths.size()) {
    return Status::InvalidArgument("estimates/truths size mismatch");
  }
  for (size_t i = 0; i < estimates.size(); ++i) {
    Observe(estimates[i], truths[i]);
  }
  return Status::OK();
}

void OnlineConformal::Observe(double estimate, double truth) {
  static obs::Counter& observations =
      obs::Metrics().GetCounter("conformal.online.observations");
  observations.Increment();
  const double score = scoring_->Score(estimate, truth);
  recency_.push_back(score);
  sorted_.insert(std::lower_bound(sorted_.begin(), sorted_.end(), score),
                 score);
  if (options_.window > 0 && recency_.size() > options_.window) {
    const double evicted = recency_.front();
    recency_.pop_front();
    auto it = std::lower_bound(sorted_.begin(), sorted_.end(), evicted);
    CONFCARD_DCHECK(it != sorted_.end() && *it == evicted);
    sorted_.erase(it);
  }
}

double OnlineConformal::delta() const {
  const size_t n = sorted_.size();
  if (n == 0) return std::numeric_limits<double>::infinity();
  const size_t rank = ConformalRank(n, options_.alpha);
  if (rank > n) return std::numeric_limits<double>::infinity();
  return sorted_[rank - 1];
}

Interval OnlineConformal::Predict(double estimate) const {
  const double d = delta();
  if (std::isinf(d)) return Interval::Infinite();
  return scoring_->Invert(estimate, d);
}

}  // namespace confcard
