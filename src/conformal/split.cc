#include "conformal/split.h"

#include "common/check.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace confcard {

SplitConformal::SplitConformal(
    std::shared_ptr<const ScoringFunction> scoring, double alpha)
    : scoring_(std::move(scoring)), alpha_(alpha) {
  CONFCARD_CHECK(scoring_ != nullptr);
  CONFCARD_CHECK(alpha_ > 0.0 && alpha_ < 1.0);
}

Status SplitConformal::Calibrate(const std::vector<double>& estimates,
                                 const std::vector<double>& truths) {
  if (estimates.size() != truths.size()) {
    return Status::InvalidArgument("estimates/truths size mismatch");
  }
  if (estimates.empty()) {
    return Status::InvalidArgument("empty calibration set");
  }
  obs::TraceSpan span("calibrate.s-cp");
  obs::Metrics().GetGauge("conformal.s-cp.calib_size")
      .Set(static_cast<double>(estimates.size()));
  std::vector<double> scores(estimates.size());
  {
    obs::TraceSpan score_span("score");
    for (size_t i = 0; i < estimates.size(); ++i) {
      scores[i] = scoring_->Score(estimates[i], truths[i]);
    }
    obs::Metrics().GetHistogram("conformal.s-cp.score_us")
        .Record(score_span.ElapsedMicros());
  }
  delta_ = ConformalQuantile(std::move(scores), alpha_);
  calibrated_ = true;
  obs::Metrics().GetCounter("conformal.s-cp.calibrations").Increment();
  return Status::OK();
}

Interval SplitConformal::Predict(double estimate) const {
  CONFCARD_CHECK_MSG(calibrated_, "SplitConformal::Calibrate not called");
  return scoring_->Invert(estimate, delta_);
}

}  // namespace confcard
