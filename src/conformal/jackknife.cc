#include "conformal/jackknife.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"

namespace confcard {

std::vector<int> AssignFolds(size_t n, int k, uint64_t seed) {
  CONFCARD_CHECK(k >= 2);
  std::vector<int> folds(n);
  for (size_t i = 0; i < n; ++i) {
    folds[i] = static_cast<int>(i % static_cast<size_t>(k));
  }
  Rng rng(seed);
  rng.Shuffle(folds);
  return folds;
}

JackknifeCvPlus::JackknifeCvPlus(
    std::shared_ptr<const ScoringFunction> scoring, double alpha, Mode mode)
    : scoring_(std::move(scoring)), alpha_(alpha), mode_(mode) {
  CONFCARD_CHECK(scoring_ != nullptr);
  CONFCARD_CHECK(alpha_ > 0.0 && alpha_ < 1.0);
}

Status JackknifeCvPlus::Calibrate(const std::vector<double>& oof_estimates,
                                  const std::vector<double>& truths,
                                  const std::vector<int>& fold_of,
                                  int num_folds) {
  if (oof_estimates.size() != truths.size() ||
      oof_estimates.size() != fold_of.size()) {
    return Status::InvalidArgument("calibration inputs size mismatch");
  }
  if (oof_estimates.empty()) {
    return Status::InvalidArgument("empty calibration set");
  }
  if (num_folds < 2) {
    return Status::InvalidArgument("need at least 2 folds");
  }
  for (int f : fold_of) {
    if (f < 0 || f >= num_folds) {
      return Status::OutOfRange("fold index out of range");
    }
  }
  num_folds_ = num_folds;
  n_ = truths.size();
  fold_of_ = fold_of;
  scores_.resize(n_);
  for (size_t i = 0; i < n_; ++i) {
    scores_[i] = scoring_->Score(oof_estimates[i], truths[i]);
  }
  delta_ = ConformalQuantile(scores_, alpha_);
  calibrated_ = true;
  return Status::OK();
}

Interval JackknifeCvPlus::Predict(const std::vector<double>& fold_estimates,
                                  double full_estimate) const {
  CONFCARD_CHECK_MSG(calibrated_, "JK-CV+ not calibrated");
  if (mode_ == Mode::kSimplified) {
    return scoring_->Invert(full_estimate, delta_);
  }
  CONFCARD_CHECK(fold_estimates.size() ==
                 static_cast<size_t>(num_folds_));
  std::vector<double> lows(n_), highs(n_);
  for (size_t i = 0; i < n_; ++i) {
    Interval iv = scoring_->Invert(
        fold_estimates[static_cast<size_t>(fold_of_[i])], scores_[i]);
    lows[i] = iv.lo;
    highs[i] = iv.hi;
  }
  // Eq. 5: lower endpoint is the alpha lower-quantile of candidate lows,
  // upper endpoint the (1-alpha) upper-quantile of candidate highs.
  Interval out;
  out.lo = ConformalQuantileLower(std::move(lows), alpha_);
  out.hi = ConformalQuantile(std::move(highs), alpha_);
  if (std::isinf(out.lo)) out.lo = -std::numeric_limits<double>::infinity();
  if (out.hi < out.lo) std::swap(out.lo, out.hi);
  return out;
}

double JackknifeCvPlus::CoverageGuarantee() const {
  CONFCARD_CHECK_MSG(calibrated_, "JK-CV+ not calibrated");
  const double n = static_cast<double>(n_);
  const double k = static_cast<double>(num_folds_);
  const double a = 2.0 * (1.0 - 1.0 / k) / (n / k + 1.0);
  const double b = (1.0 - k / n) / (k + 1.0);
  return 1.0 - 2.0 * alpha_ - std::min(a, b);
}

}  // namespace confcard
