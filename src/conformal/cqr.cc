#include "conformal/cqr.h"

#include <algorithm>

#include "common/check.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace confcard {

ConformalizedQuantileRegression::ConformalizedQuantileRegression(double alpha)
    : alpha_(alpha) {
  CONFCARD_CHECK(alpha_ > 0.0 && alpha_ < 1.0);
}

Status ConformalizedQuantileRegression::Calibrate(
    const std::vector<double>& lo_estimates,
    const std::vector<double>& hi_estimates,
    const std::vector<double>& truths) {
  if (lo_estimates.size() != truths.size() ||
      hi_estimates.size() != truths.size()) {
    return Status::InvalidArgument("calibration inputs size mismatch");
  }
  if (truths.empty()) {
    return Status::InvalidArgument("empty calibration set");
  }
  obs::TraceSpan span("calibrate.cqr");
  obs::Metrics().GetGauge("conformal.cqr.calib_size")
      .Set(static_cast<double>(truths.size()));
  std::vector<double> scores(truths.size());
  {
    obs::TraceSpan score_span("score");
    for (size_t i = 0; i < truths.size(); ++i) {
      scores[i] =
          std::max(lo_estimates[i] - truths[i], truths[i] - hi_estimates[i]);
    }
    obs::Metrics().GetHistogram("conformal.cqr.score_us")
        .Record(score_span.ElapsedMicros());
  }
  delta_ = ConformalQuantile(std::move(scores), alpha_);
  calibrated_ = true;
  obs::Metrics().GetCounter("conformal.cqr.calibrations").Increment();
  return Status::OK();
}

Interval ConformalizedQuantileRegression::Predict(double lo_estimate,
                                                  double hi_estimate) const {
  CONFCARD_CHECK_MSG(calibrated_, "CQR not calibrated");
  Interval iv{lo_estimate - delta_, hi_estimate + delta_};
  if (iv.hi < iv.lo) {
    // Crossed quantile heads after a negative delta: collapse to the
    // midpoint rather than returning an inverted interval.
    const double mid = 0.5 * (iv.lo + iv.hi);
    iv.lo = iv.hi = mid;
  }
  return iv;
}

}  // namespace confcard
