// Config validation for the conformal layer. The method constructors
// CHECK these invariants (library contract); user-facing entry points —
// the harness factories, the CLI — validate first so a bad config comes
// back as Status::InvalidArgument instead of aborting the process.
#ifndef CONFCARD_CONFORMAL_VALIDATE_H_
#define CONFCARD_CONFORMAL_VALIDATE_H_

#include "common/status.h"

namespace confcard {

/// Miscoverage level: alpha must be strictly inside (0, 1).
Status ValidateAlpha(double alpha);

/// Fold count for JK-CV+: k must be at least 2.
Status ValidateFolds(int k);

}  // namespace confcard

#endif  // CONFCARD_CONFORMAL_VALIDATE_H_
