#include "conformal/mondrian.h"

#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace confcard {

MondrianConformal::MondrianConformal(
    std::shared_ptr<const ScoringFunction> scoring, GroupFn group_fn,
    Options options)
    : scoring_(std::move(scoring)),
      group_fn_(std::move(group_fn)),
      options_(options) {
  CONFCARD_CHECK(scoring_ != nullptr);
  CONFCARD_CHECK(static_cast<bool>(group_fn_));
  CONFCARD_CHECK(options_.alpha > 0.0 && options_.alpha < 1.0);
}

Status MondrianConformal::Calibrate(
    const std::vector<std::vector<float>>& features,
    const std::vector<double>& estimates,
    const std::vector<double>& truths) {
  if (features.size() != estimates.size() ||
      features.size() != truths.size()) {
    return Status::InvalidArgument("calibration inputs size mismatch");
  }
  if (features.empty()) {
    return Status::InvalidArgument("empty calibration set");
  }

  std::vector<double> all_scores(features.size());
  std::unordered_map<int, std::vector<double>> by_group;
  for (size_t i = 0; i < features.size(); ++i) {
    const double s = scoring_->Score(estimates[i], truths[i]);
    all_scores[i] = s;
    by_group[group_fn_(features[i])].push_back(s);
  }

  global_delta_ = ConformalQuantile(std::move(all_scores), options_.alpha);
  group_delta_.clear();
  for (auto& [group, scores] : by_group) {
    if (scores.size() < options_.min_group_size) continue;
    const double d = ConformalQuantile(std::move(scores), options_.alpha);
    // A too-small group can still yield +inf (rank overflow); keep the
    // global fallback in that case.
    if (std::isfinite(d)) group_delta_[group] = d;
  }
  calibrated_ = true;
  return Status::OK();
}

double MondrianConformal::DeltaForGroup(int group) const {
  CONFCARD_CHECK_MSG(calibrated_, "Mondrian CP not calibrated");
  auto it = group_delta_.find(group);
  return it == group_delta_.end() ? global_delta_ : it->second;
}

Interval MondrianConformal::Predict(
    double estimate, const std::vector<float>& features) const {
  return scoring_->Invert(estimate, DeltaForGroup(group_fn_(features)));
}

MondrianConformal::GroupFn GroupByPredicateCount(size_t num_columns) {
  return [num_columns](const std::vector<float>& features) {
    int count = 0;
    for (size_t c = 0; c < num_columns; ++c) {
      if (5 * c < features.size() && features[5 * c] > 0.5f) ++count;
    }
    return count;
  };
}

}  // namespace confcard
