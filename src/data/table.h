// In-memory columnar table.
#ifndef CONFCARD_DATA_TABLE_H_
#define CONFCARD_DATA_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/column.h"

namespace confcard {

/// A named collection of equal-length columns.
class Table {
 public:
  /// Builds a table; all columns must have the same length.
  static Result<Table> Make(std::string name, std::vector<Column> columns);

  const std::string& name() const { return name_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or -1 if absent.
  int ColumnIndex(const std::string& name) const;
  /// Column by name. Precondition: the column exists.
  const Column& ColumnByName(const std::string& name) const;

  /// Cell accessor (column-major storage).
  double At(size_t row, size_t col) const { return columns_[col][row]; }

  /// Materializes one row.
  std::vector<double> Row(size_t row) const;

 private:
  Table(std::string name, std::vector<Column> columns, size_t num_rows);

  std::string name_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace confcard

#endif  // CONFCARD_DATA_TABLE_H_
