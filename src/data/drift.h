// Deterministic drift injection for dynamic-data and workload-shift
// scenarios ("Are We Ready For Learned CE?" faults learned estimators
// exactly here: updates and distribution drift). A drift scenario turns
// the repo's frozen train-once workloads into a replayable *stream*: a
// pre-drift table the models train and calibrate on, a post-drift table
// produced by seeded data transformations, and an arrival-ordered query
// stream whose ground truths always reflect the live data state.
//
// Drift is configured from the CONFCARD_DRIFT environment variable (or
// programmatically, for tests and bench_drift) as a semicolon-separated
// list modeled on the CONFCARD_FAULTS grammar:
//
//   <kind>:<magnitude>@<onset>   e.g.  zipf:0.6@0.5;update:0.3@0.5
//
// where <kind> is one of
//   append    — append magnitude * num_rows fresh rows drawn from the
//               (possibly distribution-shifted) generator spec
//   update    — rewrite magnitude * num_rows deterministically selected
//               rows with fresh draws from the shifted spec
//   delete    — drop magnitude * num_rows deterministically selected rows
//   zipf      — shift every categorical column's Zipf skew by
//               magnitude * kZipfSkewSpan
//   corr      — move every correlated column's correlation toward its
//               opposite extreme: c' = c + magnitude * (1 - 2c)
//   template  — post-onset queries come (with per-index probability
//               magnitude) from a shifted workload template
//               (uniform-centered literals, flipped range probability,
//               one extra predicate)
// <magnitude> is a severity in [0, 1] and <onset> the fraction of the
// query stream at which the drift takes effect, in [0, 1).
//
// Determinism: every transformation is a pure function of (base spec,
// drift specs, stream options); repeated generation is bit-identical,
// which is what lets bench_drift gate replays at 1 and 4 shards.
#ifndef CONFCARD_DATA_DRIFT_H_
#define CONFCARD_DATA_DRIFT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/generators.h"
#include "data/table.h"
#include "query/predicate.h"
#include "query/workload.h"

namespace confcard {
namespace drift {

/// How far a zipf arm at magnitude 1 shifts each categorical column's
/// skew parameter.
inline constexpr double kZipfSkewSpan = 1.5;

/// One drift transformation.
enum class DriftKind {
  kAppend,
  kUpdate,
  kDelete,
  kZipf,
  kCorrelation,
  kTemplate,
};

/// "append" / "update" / "delete" / "zipf" / "corr" / "template".
const char* DriftKindToString(DriftKind kind);

/// One parsed arm of a CONFCARD_DRIFT spec.
struct DriftSpec {
  DriftKind kind = DriftKind::kUpdate;
  /// Severity in [0, 1]; per-kind meaning documented above.
  double magnitude = 0.0;
  /// Fraction of the stream at which the drift takes effect, in [0, 1).
  /// All data arms (everything but template) are applied atomically at
  /// the earliest data onset; a template arm uses its own onset.
  double onset = 0.5;
};

/// Parses the CONFCARD_DRIFT grammar ("kind:magnitude@onset;...").
/// Empty input yields an empty list; malformed entries produce
/// InvalidArgument naming the offending token.
Result<std::vector<DriftSpec>> ParseDriftSpecs(std::string_view text);

/// Specs from the CONFCARD_DRIFT environment variable. A malformed
/// value is reported on stderr and treated as empty.
std::vector<DriftSpec> DriftSpecsFromEnv();

/// Canonical rendering of `specs` back into the grammar (for bench
/// config blocks and replay logs).
std::string RenderDriftSpecs(const std::vector<DriftSpec>& specs);

/// Stream-shape knobs for GenerateDriftStream.
struct DriftStreamOptions {
  /// Total queries in the arrival-ordered stream.
  size_t num_queries = 1000;
  /// Base query template; per-segment workloads derive their seeds and
  /// sizes from it, so the option's own seed/num_queries are ignored.
  WorkloadConfig workload;
  /// Seed for everything stream-side (segment workload seeds, row
  /// selection, template mixing). Independent of the table spec's seed.
  uint64_t seed = 1;
};

/// A fully materialized drift scenario.
struct DriftStream {
  /// Data state the models train and calibrate on.
  Table pre_table;
  /// Data state after every data arm has been applied.
  Table post_table;
  /// First stream index at which any arm is in effect (num_queries when
  /// no arm fires within the stream).
  size_t onset_index = 0;
  /// First stream index whose truths come from post_table.
  size_t data_onset_index = 0;
  /// Arrival-ordered executed-query stream; each truth is the exact
  /// cardinality under the table state live at that stream position.
  Workload stream;
};

/// Materializes the scenario: generates the pre table from `base`,
/// applies every data arm (update, then delete, then append; fresh draws
/// come from the zipf/corr-shifted spec — a zipf/corr arm with no row
/// churn regenerates the whole table from the shifted spec), and builds
/// the labeled stream with truths from the live data state. Bit-identical
/// for fixed inputs.
Result<DriftStream> GenerateDriftStream(const TableSpec& base,
                                        const DriftStreamOptions& options,
                                        const std::vector<DriftSpec>& specs);

/// The distribution-shifted generator spec the data arms draw fresh rows
/// from (exposed for tests): zipf arms shift categorical skew, corr arms
/// move correlations toward their opposite extreme.
TableSpec ShiftedTableSpec(const TableSpec& base,
                           const std::vector<DriftSpec>& specs);

}  // namespace drift
}  // namespace confcard

#endif  // CONFCARD_DATA_DRIFT_H_
