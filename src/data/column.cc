#include "data/column.h"

#include <algorithm>

#include "common/check.h"

namespace confcard {

const char* ColumnKindToString(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kCategorical:
      return "categorical";
    case ColumnKind::kNumeric:
      return "numeric";
  }
  return "unknown";
}

Column Column::Categorical(std::string name, int64_t domain_size,
                           std::vector<double> codes) {
  CONFCARD_CHECK(domain_size > 0);
#ifndef NDEBUG
  for (double c : codes) {
    CONFCARD_DCHECK(c >= 0.0 && c < static_cast<double>(domain_size));
    CONFCARD_DCHECK(c == static_cast<double>(static_cast<int64_t>(c)));
  }
#endif
  return Column(std::move(name), ColumnKind::kCategorical, domain_size,
                std::move(codes));
}

Column Column::Numeric(std::string name, std::vector<double> values) {
  return Column(std::move(name), ColumnKind::kNumeric, 0, std::move(values));
}

Column::Column(std::string name, ColumnKind kind, int64_t domain_size,
               std::vector<double> data)
    : name_(std::move(name)),
      kind_(kind),
      domain_size_(domain_size),
      data_(std::move(data)) {
  ComputeStats();
}

void Column::ComputeStats() {
  if (data_.empty()) {
    min_ = max_ = 0.0;
    distinct_ = 0;
    return;
  }
  std::vector<double> sorted = data_;
  std::sort(sorted.begin(), sorted.end());
  min_ = sorted.front();
  max_ = sorted.back();
  distinct_ = 1;
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] != sorted[i - 1]) ++distinct_;
  }
}

std::vector<double> Column::DistinctValues() const {
  std::vector<double> sorted = data_;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return sorted;
}

}  // namespace confcard
