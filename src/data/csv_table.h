// Loading external datasets: CSV -> columnar Table with automatic type
// inference (numeric columns stay numeric; everything else is
// dictionary-encoded to categorical codes). This is how a user brings
// their own data to the estimators instead of the synthetic generators.
#ifndef CONFCARD_DATA_CSV_TABLE_H_
#define CONFCARD_DATA_CSV_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace confcard {

/// Per-column load options.
struct CsvLoadOptions {
  /// Treat the first row as the header (column names). Without a header
  /// columns are named c0, c1, ...
  bool has_header = true;
  char delimiter = ',';
  /// Columns (by name) to force categorical even if all values parse as
  /// numbers (e.g., zip codes).
  std::vector<std::string> force_categorical;
  /// Maximum distinct values for a categorical column; loading fails
  /// beyond this (guards against accidentally dictionary-encoding a
  /// free-text column).
  size_t max_categorical_domain = 100000;
};

/// Result of a load: the table plus per-column dictionaries (empty for
/// numeric columns) mapping categorical codes back to original strings.
struct LoadedTable {
  Table table;
  std::vector<std::vector<std::string>> dictionaries;

  /// Original string for code `code` of column `col` (empty for numeric
  /// columns / out-of-range codes).
  std::string Decode(size_t col, int64_t code) const;
};

/// Loads `path` as a table named `name`. Numeric inference: a column is
/// numeric iff every non-empty cell parses as a finite double; empty
/// cells in numeric columns load as 0. Categorical codes are assigned in
/// order of first appearance.
Result<LoadedTable> LoadTableFromCsv(const std::string& path,
                                     const std::string& name,
                                     const CsvLoadOptions& options = {});

}  // namespace confcard

#endif  // CONFCARD_DATA_CSV_TABLE_H_
