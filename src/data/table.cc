#include "data/table.h"

#include "common/check.h"

namespace confcard {

Result<Table> Table::Make(std::string name, std::vector<Column> columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("table '" + name + "' has no columns");
  }
  size_t rows = columns.front().size();
  for (const Column& c : columns) {
    if (c.size() != rows) {
      return Status::InvalidArgument("column '" + c.name() +
                                     "' length mismatch in table '" + name +
                                     "'");
    }
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    for (size_t j = i + 1; j < columns.size(); ++j) {
      if (columns[i].name() == columns[j].name()) {
        return Status::InvalidArgument("duplicate column name '" +
                                       columns[i].name() + "' in table '" +
                                       name + "'");
      }
    }
  }
  return Table(std::move(name), std::move(columns), rows);
}

Table::Table(std::string name, std::vector<Column> columns, size_t num_rows)
    : name_(std::move(name)), columns_(std::move(columns)),
      num_rows_(num_rows) {}

int Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return static_cast<int>(i);
  }
  return -1;
}

const Column& Table::ColumnByName(const std::string& name) const {
  int idx = ColumnIndex(name);
  CONFCARD_CHECK_MSG(idx >= 0, name.c_str());
  return columns_[static_cast<size_t>(idx)];
}

std::vector<double> Table::Row(size_t row) const {
  CONFCARD_DCHECK(row < num_rows_);
  std::vector<double> out(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) out[c] = columns_[c][row];
  return out;
}

}  // namespace confcard
