#include "data/drift.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/check.h"

namespace confcard {
namespace drift {
namespace {

// splitmix64 finalizer (same mixing family as the fault registry):
// full-avalanche hashing of row indices and stream positions, so every
// selection decision is a pure function of its inputs.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool IsDataKind(DriftKind kind) { return kind != DriftKind::kTemplate; }

bool IsRowKind(DriftKind kind) {
  return kind == DriftKind::kAppend || kind == DriftKind::kUpdate ||
         kind == DriftKind::kDelete;
}

// Column-major cell matrix of `table` (copy; drift transforms mutate it).
std::vector<std::vector<double>> CellsOf(const Table& table) {
  std::vector<std::vector<double>> cells(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    cells[c] = table.column(c).data();
  }
  return cells;
}

Table TableFromCells(const TableSpec& spec, std::string name,
                     std::vector<std::vector<double>> cells) {
  std::vector<Column> columns;
  columns.reserve(cells.size());
  for (size_t c = 0; c < cells.size(); ++c) {
    const ColumnSpec& cs = spec.columns[c];
    if (cs.kind == ColumnKind::kCategorical) {
      columns.push_back(
          Column::Categorical(cs.name, cs.domain_size, std::move(cells[c])));
    } else {
      columns.push_back(Column::Numeric(cs.name, std::move(cells[c])));
    }
  }
  return Table::Make(std::move(name), std::move(columns)).value();
}

// The deterministically selected row set for an update/delete arm:
// row i is selected iff Unit(Mix(i ^ salt)) < magnitude. Hash-based (not
// prefix-based) so selected rows are spread across the table.
bool RowSelected(size_t row, uint64_t salt, double magnitude) {
  return ToUnit(Mix(static_cast<uint64_t>(row) ^ salt)) < magnitude;
}

size_t RowsFor(double magnitude, size_t num_rows) {
  return static_cast<size_t>(
      std::llround(magnitude * static_cast<double>(num_rows)));
}

// The shifted workload template a template arm mixes in: literals drawn
// uniformly from the domain (many empty / low-cardinality queries, the
// Figure 11 shift), flipped range probability, one extra predicate.
WorkloadConfig ShiftedWorkloadConfig(const WorkloadConfig& base) {
  WorkloadConfig wc = base;
  wc.center_mode = CenterMode::kUniform;
  wc.range_prob = 1.0 - base.range_prob;
  wc.max_predicates = base.max_predicates + 1;
  return wc;
}

// Draws the next query from `pool`, wrapping when the selectivity filter
// left the pool short (determinism is preserved: the cursor sequence is
// a pure function of the stream mix).
const LabeledQuery& NextFrom(const Workload& pool, size_t* cursor) {
  CONFCARD_CHECK_MSG(!pool.empty(), "drift: empty workload pool");
  const LabeledQuery& q = pool[*cursor % pool.size()];
  ++*cursor;
  return q;
}

}  // namespace

const char* DriftKindToString(DriftKind kind) {
  switch (kind) {
    case DriftKind::kAppend:
      return "append";
    case DriftKind::kUpdate:
      return "update";
    case DriftKind::kDelete:
      return "delete";
    case DriftKind::kZipf:
      return "zipf";
    case DriftKind::kCorrelation:
      return "corr";
    case DriftKind::kTemplate:
      return "template";
  }
  return "update";
}

Result<std::vector<DriftSpec>> ParseDriftSpecs(std::string_view text) {
  std::vector<DriftSpec> specs;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t semi = text.find(';', pos);
    std::string_view entry = Trim(
        text.substr(pos, semi == std::string_view::npos ? semi : semi - pos));
    pos = semi == std::string_view::npos ? text.size() + 1 : semi + 1;
    if (entry.empty()) continue;

    const size_t colon = entry.find(':');
    const size_t at = entry.rfind('@');
    if (colon == std::string_view::npos || at == std::string_view::npos ||
        at < colon) {
      return Status::InvalidArgument(
          "drift spec '" + std::string(entry) +
          "' is not of the form kind:magnitude@onset");
    }
    DriftSpec spec;
    const std::string_view kind = Trim(entry.substr(0, colon));
    if (kind == "append") {
      spec.kind = DriftKind::kAppend;
    } else if (kind == "update") {
      spec.kind = DriftKind::kUpdate;
    } else if (kind == "delete") {
      spec.kind = DriftKind::kDelete;
    } else if (kind == "zipf") {
      spec.kind = DriftKind::kZipf;
    } else if (kind == "corr") {
      spec.kind = DriftKind::kCorrelation;
    } else if (kind == "template") {
      spec.kind = DriftKind::kTemplate;
    } else {
      return Status::InvalidArgument(
          "drift kind '" + std::string(kind) +
          "' is not append|update|delete|zipf|corr|template");
    }
    const std::string mag_str(Trim(entry.substr(colon + 1, at - colon - 1)));
    char* end = nullptr;
    spec.magnitude = std::strtod(mag_str.c_str(), &end);
    if (mag_str.empty() || end != mag_str.c_str() + mag_str.size() ||
        !std::isfinite(spec.magnitude) || spec.magnitude < 0.0 ||
        spec.magnitude > 1.0) {
      return Status::InvalidArgument("drift magnitude '" + mag_str +
                                     "' is not a number in [0, 1]");
    }
    const std::string onset_str(Trim(entry.substr(at + 1)));
    spec.onset = std::strtod(onset_str.c_str(), &end);
    if (onset_str.empty() || end != onset_str.c_str() + onset_str.size() ||
        !std::isfinite(spec.onset) || spec.onset < 0.0 || spec.onset >= 1.0) {
      return Status::InvalidArgument("drift onset '" + onset_str +
                                     "' is not a number in [0, 1)");
    }
    specs.push_back(spec);
  }
  return specs;
}

std::vector<DriftSpec> DriftSpecsFromEnv() {
  const char* raw = std::getenv("CONFCARD_DRIFT");
  if (raw == nullptr || raw[0] == '\0') return {};
  Result<std::vector<DriftSpec>> parsed = ParseDriftSpecs(raw);
  if (!parsed.ok()) {
    std::fprintf(stderr, "CONFCARD_DRIFT ignored: %s\n",
                 parsed.status().ToString().c_str());
    return {};
  }
  return std::move(parsed).value();
}

std::string RenderDriftSpecs(const std::vector<DriftSpec>& specs) {
  std::string out;
  char buf[64];
  for (const DriftSpec& spec : specs) {
    if (!out.empty()) out += ';';
    std::snprintf(buf, sizeof(buf), "%s:%g@%g", DriftKindToString(spec.kind),
                  spec.magnitude, spec.onset);
    out += buf;
  }
  return out;
}

TableSpec ShiftedTableSpec(const TableSpec& base,
                           const std::vector<DriftSpec>& specs) {
  TableSpec shifted = base;
  for (const DriftSpec& spec : specs) {
    if (spec.kind == DriftKind::kZipf) {
      for (ColumnSpec& c : shifted.columns) {
        if (c.kind == ColumnKind::kCategorical) {
          c.zipf_skew += spec.magnitude * kZipfSkewSpan;
        }
      }
    } else if (spec.kind == DriftKind::kCorrelation) {
      for (ColumnSpec& c : shifted.columns) {
        if (c.parent >= 0) {
          // Move toward the opposite extreme: magnitude 1 flips a
          // functionally determined column to independent and vice versa.
          c.correlation += spec.magnitude * (1.0 - 2.0 * c.correlation);
          c.correlation = std::clamp(c.correlation, 0.0, 1.0);
        }
      }
    }
  }
  return shifted;
}

Result<DriftStream> GenerateDriftStream(const TableSpec& base,
                                        const DriftStreamOptions& options,
                                        const std::vector<DriftSpec>& specs) {
  if (options.num_queries == 0) {
    return Status::InvalidArgument("drift stream needs num_queries > 0");
  }
  for (const DriftSpec& spec : specs) {
    if (!(spec.magnitude >= 0.0 && spec.magnitude <= 1.0)) {
      return Status::InvalidArgument("drift magnitude out of [0, 1]");
    }
    if (!(spec.onset >= 0.0 && spec.onset < 1.0)) {
      return Status::InvalidArgument("drift onset out of [0, 1)");
    }
  }

  CONFCARD_ASSIGN_OR_RETURN(Table pre, GenerateTable(base));
  const size_t n = options.num_queries;

  // Arm bookkeeping: data arms share the earliest data onset; the
  // template mix uses its own onset and magnitude (multiple template
  // arms compose by probability saturation).
  double data_onset = 1.0;
  double template_onset = 1.0;
  double template_magnitude = 0.0;
  bool any_data = false;
  bool any_rows = false;
  double append_m = 0.0, update_m = 0.0, delete_m = 0.0;
  for (const DriftSpec& spec : specs) {
    if (spec.kind == DriftKind::kTemplate) {
      template_onset = std::min(template_onset, spec.onset);
      template_magnitude =
          1.0 - (1.0 - template_magnitude) * (1.0 - spec.magnitude);
      continue;
    }
    if (spec.magnitude <= 0.0) continue;
    any_data = true;
    data_onset = std::min(data_onset, spec.onset);
    if (IsRowKind(spec.kind)) any_rows = true;
    if (spec.kind == DriftKind::kAppend) append_m += spec.magnitude;
    if (spec.kind == DriftKind::kUpdate) update_m += spec.magnitude;
    if (spec.kind == DriftKind::kDelete) delete_m += spec.magnitude;
  }
  const bool any_template = template_magnitude > 0.0;

  // ---- Post-drift data state ----
  const TableSpec shifted = ShiftedTableSpec(base, specs);
  Table post = [&]() -> Table {
    if (!any_data) {
      // Pure workload shift: the data never changes.
      return TableFromCells(base, base.name, CellsOf(pre));
    }
    if (!any_rows) {
      // Distribution drift with no row churn: the whole table is
      // redrawn from the shifted spec (same seed, so the structural
      // change is exactly the shifted marginals/correlations).
      return GenerateTable(shifted).value();
    }
    std::vector<std::vector<double>> cells = CellsOf(pre);
    const size_t rows = pre.num_rows();
    const uint64_t salt_update = Mix(options.seed ^ 0x75706461ull);
    const uint64_t salt_delete = Mix(options.seed ^ 0x64656c65ull);
    // Update: rewrite the selected rows with fresh draws from the
    // shifted spec (an auxiliary generated table supplies rows with the
    // right marginals and correlation structure).
    if (update_m > 0.0) {
      TableSpec aux_spec = shifted;
      aux_spec.num_rows = rows;
      aux_spec.seed = Mix(base.seed ^ options.seed ^ 0x11ull);
      const Table aux = GenerateTable(aux_spec).value();
      for (size_t r = 0; r < rows; ++r) {
        if (!RowSelected(r, salt_update, std::min(update_m, 1.0))) continue;
        for (size_t c = 0; c < cells.size(); ++c) cells[c][r] = aux.At(r, c);
      }
    }
    // Delete: drop the selected rows.
    if (delete_m > 0.0) {
      const double m = std::min(delete_m, 1.0);
      size_t w = 0;
      for (size_t r = 0; r < rows; ++r) {
        if (RowSelected(r, salt_delete, m)) continue;
        for (size_t c = 0; c < cells.size(); ++c) cells[c][w] = cells[c][r];
        ++w;
      }
      for (size_t c = 0; c < cells.size(); ++c) cells[c].resize(w);
    }
    // Append: fresh rows from the shifted spec.
    if (append_m > 0.0) {
      TableSpec aux_spec = shifted;
      aux_spec.num_rows = RowsFor(std::min(append_m, 1.0), rows);
      aux_spec.seed = Mix(base.seed ^ options.seed ^ 0x22ull);
      if (aux_spec.num_rows > 0) {
        const Table aux = GenerateTable(aux_spec).value();
        for (size_t c = 0; c < cells.size(); ++c) {
          const std::vector<double>& src = aux.column(c).data();
          cells[c].insert(cells[c].end(), src.begin(), src.end());
        }
      }
    }
    CONFCARD_CHECK_MSG(!cells.empty() && !cells[0].empty(),
                       "drift: every row was deleted");
    return TableFromCells(base, base.name, std::move(cells));
  }();

  // ---- Arrival-ordered stream ----
  const size_t data_idx = any_data ? static_cast<size_t>(std::llround(
                                         data_onset * static_cast<double>(n)))
                                   : n;
  const size_t tmpl_idx =
      any_template ? static_cast<size_t>(
                         std::llround(template_onset * static_cast<double>(n)))
                   : n;

  WorkloadConfig base_wc = options.workload;
  base_wc.num_queries = n;
  const WorkloadConfig shift_wc = ShiftedWorkloadConfig(base_wc);

  // One pool per (table state, template) combination actually reachable.
  // Seeds are derived from the stream seed so pools never alias.
  const auto pool = [&](const Table& table, const WorkloadConfig& wc,
                        uint64_t salt) {
    WorkloadConfig c = wc;
    c.seed = Mix(options.seed ^ salt);
    return GenerateWorkload(table, c);
  };
  CONFCARD_ASSIGN_OR_RETURN(Workload pre_base, pool(pre, base_wc, 0xA1ull));
  Workload post_base, pre_shift, post_shift;
  if (data_idx < n) {
    CONFCARD_ASSIGN_OR_RETURN(post_base, pool(post, base_wc, 0xA2ull));
  }
  if (any_template) {
    if (tmpl_idx < data_idx) {
      CONFCARD_ASSIGN_OR_RETURN(pre_shift, pool(pre, shift_wc, 0xA3ull));
    }
    if (data_idx < n) {
      CONFCARD_ASSIGN_OR_RETURN(post_shift, pool(post, shift_wc, 0xA4ull));
    }
  }

  const uint64_t salt_template = Mix(options.seed ^ 0x746d706cull);
  DriftStream out{std::move(pre), std::move(post)};
  out.data_onset_index = data_idx;
  out.onset_index = std::min(data_idx, any_template ? tmpl_idx : n);
  out.stream.reserve(n);
  size_t cursors[4] = {0, 0, 0, 0};  // pre/post x base/shift
  for (size_t i = 0; i < n; ++i) {
    const bool post_state = i >= data_idx;
    const bool shifted_template =
        any_template && i >= tmpl_idx &&
        ToUnit(Mix(static_cast<uint64_t>(i) ^ salt_template)) <
            template_magnitude;
    const Workload& src = post_state
                              ? (shifted_template ? post_shift : post_base)
                              : (shifted_template ? pre_shift : pre_base);
    size_t& cursor =
        cursors[(post_state ? 2 : 0) + (shifted_template ? 1 : 0)];
    out.stream.push_back(NextFrom(src, &cursor));
  }
  return out;
}

}  // namespace drift
}  // namespace confcard
