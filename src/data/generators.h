// Synthetic single-table data generation with controllable skew and
// inter-column correlation. The real evaluation datasets (DMV, Census,
// Forest, Power) are not redistributable here; datasets.h instantiates
// this generator with specs matching their published shape (column
// counts, categorical/numeric mix, skew, correlated column clusters) —
// see DESIGN.md Section 1 for the substitution rationale.
#ifndef CONFCARD_DATA_GENERATORS_H_
#define CONFCARD_DATA_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace confcard {

/// Marginal distribution for numeric columns.
enum class NumericDist {
  kUniform,
  kGaussian,     // clipped to [min, max]
  kExponential,  // rate chosen so ~99% of mass falls within [min, max]
};

/// Specification of one generated column.
///
/// Correlation model: a column may name an earlier column as `parent`.
/// With probability `correlation` the cell is a deterministic function of
/// the parent cell (a pseudo-random but fixed mapping for categorical
/// children; an affine map plus small noise for numeric children), and
/// with probability 1-correlation it is an independent draw from the
/// marginal. correlation = 0 gives an independent column; correlation = 1
/// a functionally determined one. This reproduces the property the paper
/// leans on: learned-model residuals are larger for queries touching
/// correlated attributes.
struct ColumnSpec {
  std::string name;
  ColumnKind kind = ColumnKind::kCategorical;

  // Categorical marginal: Zipf(zipf_skew) over [0, domain_size).
  int64_t domain_size = 2;
  double zipf_skew = 0.0;

  // Numeric marginal.
  double num_min = 0.0;
  double num_max = 1.0;
  NumericDist dist = NumericDist::kUniform;

  // Correlation with an earlier column (-1 = independent).
  int parent = -1;
  double correlation = 0.0;
};

/// Specification of a full table.
struct TableSpec {
  std::string name;
  size_t num_rows = 0;
  std::vector<ColumnSpec> columns;
  uint64_t seed = 1;
};

/// Generates a table from `spec`. Fails if a parent index is not an
/// earlier column or a spec field is out of range.
Result<Table> GenerateTable(const TableSpec& spec);

}  // namespace confcard

#endif  // CONFCARD_DATA_GENERATORS_H_
