#include "data/csv_table.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "common/csv.h"

namespace confcard {
namespace {

bool ParsesAsNumber(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

}  // namespace

std::string LoadedTable::Decode(size_t col, int64_t code) const {
  if (col >= dictionaries.size()) return "";
  const auto& dict = dictionaries[col];
  if (code < 0 || static_cast<size_t>(code) >= dict.size()) return "";
  return dict[static_cast<size_t>(code)];
}

Result<LoadedTable> LoadTableFromCsv(const std::string& path,
                                     const std::string& name,
                                     const CsvLoadOptions& options) {
  std::vector<std::string> header;
  CONFCARD_ASSIGN_OR_RETURN(
      auto rows,
      ReadCsv(path, options.has_header,
              options.has_header ? &header : nullptr, options.delimiter));
  if (rows.empty()) {
    return Status::InvalidArgument("csv '" + path + "' has no data rows");
  }

  const size_t num_cols = rows.front().size();
  if (num_cols == 0) {
    return Status::InvalidArgument("csv '" + path + "' has no columns");
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != num_cols) {
      return Status::InvalidArgument(
          "csv '" + path + "': row " + std::to_string(r) + " has " +
          std::to_string(rows[r].size()) + " fields, expected " +
          std::to_string(num_cols));
    }
  }
  if (options.has_header && header.size() != num_cols) {
    return Status::InvalidArgument("csv header/data column count mismatch");
  }

  std::vector<std::string> names(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    names[c] = options.has_header ? header[c] : "c" + std::to_string(c);
  }

  auto forced = [&](const std::string& col_name) {
    return std::find(options.force_categorical.begin(),
                     options.force_categorical.end(),
                     col_name) != options.force_categorical.end();
  };

  std::vector<Column> columns;
  std::vector<std::vector<std::string>> dictionaries(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    // Numeric inference pass.
    bool numeric = !forced(names[c]);
    std::vector<double> values(rows.size());
    if (numeric) {
      for (size_t r = 0; r < rows.size(); ++r) {
        const std::string& cell = rows[r][c];
        if (cell.empty()) {
          values[r] = 0.0;
          continue;
        }
        if (!ParsesAsNumber(cell, &values[r])) {
          numeric = false;
          break;
        }
      }
    }
    if (numeric) {
      columns.push_back(Column::Numeric(names[c], std::move(values)));
      continue;
    }
    // Dictionary-encode.
    std::unordered_map<std::string, int64_t> dict;
    std::vector<std::string>& labels = dictionaries[c];
    for (size_t r = 0; r < rows.size(); ++r) {
      const std::string& cell = rows[r][c];
      auto [it, inserted] =
          dict.emplace(cell, static_cast<int64_t>(labels.size()));
      if (inserted) {
        labels.push_back(cell);
        if (labels.size() > options.max_categorical_domain) {
          return Status::InvalidArgument(
              "column '" + names[c] + "' exceeds max_categorical_domain (" +
              std::to_string(options.max_categorical_domain) +
              " distinct values)");
        }
      }
      values[r] = static_cast<double>(it->second);
    }
    columns.push_back(Column::Categorical(
        names[c], static_cast<int64_t>(labels.size()), std::move(values)));
  }

  CONFCARD_ASSIGN_OR_RETURN(Table table,
                            Table::Make(name, std::move(columns)));
  return LoadedTable{std::move(table), std::move(dictionaries)};
}

}  // namespace confcard
