// Columnar storage primitives. Physical representation is uniform
// (double per cell) so that scans, models and featurizers share one code
// path; logical kind (categorical vs numeric) drives predicate
// generation, featurization and discretization. Categorical cells hold
// integer codes in [0, domain_size).
#ifndef CONFCARD_DATA_COLUMN_H_
#define CONFCARD_DATA_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace confcard {

/// Logical column kind.
enum class ColumnKind {
  kCategorical,  // integer codes in [0, domain_size)
  kNumeric,      // arbitrary doubles
};

const char* ColumnKindToString(ColumnKind kind);

/// One column of a table. Owns its cell data and lazily computed
/// statistics (min/max/distinct count) used by estimators and binners.
class Column {
 public:
  /// Categorical column. Codes must lie in [0, domain_size).
  static Column Categorical(std::string name, int64_t domain_size,
                            std::vector<double> codes);
  /// Numeric column.
  static Column Numeric(std::string name, std::vector<double> values);

  const std::string& name() const { return name_; }
  ColumnKind kind() const { return kind_; }
  bool is_categorical() const { return kind_ == ColumnKind::kCategorical; }

  size_t size() const { return data_.size(); }
  double operator[](size_t row) const { return data_[row]; }
  const std::vector<double>& data() const { return data_; }

  /// Domain size for categorical columns; 0 for numeric.
  int64_t domain_size() const { return domain_size_; }

  /// Minimum / maximum cell value (0 for empty columns).
  double min_value() const { return min_; }
  double max_value() const { return max_; }
  /// Number of distinct values.
  int64_t distinct_count() const { return distinct_; }

  /// Sorted distinct values present in the column.
  std::vector<double> DistinctValues() const;

 private:
  Column(std::string name, ColumnKind kind, int64_t domain_size,
         std::vector<double> data);
  void ComputeStats();

  std::string name_;
  ColumnKind kind_;
  int64_t domain_size_ = 0;
  std::vector<double> data_;
  double min_ = 0.0;
  double max_ = 0.0;
  int64_t distinct_ = 0;
};

}  // namespace confcard

#endif  // CONFCARD_DATA_COLUMN_H_
