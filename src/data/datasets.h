// Synthetic stand-ins for the paper's evaluation datasets. Each factory
// matches the published shape of the original: column count,
// categorical/numeric mix, domain sizes, skew, and correlated column
// clusters (the property that drives heteroscedastic model error, which
// the locally weighted and CQR methods exploit).
#ifndef CONFCARD_DATA_DATASETS_H_
#define CONFCARD_DATA_DATASETS_H_

#include <cstdint>

#include "common/status.h"
#include "data/table.h"

namespace confcard {

/// DMV-like: 11 columns, 10 categorical + 1 numeric, strong correlation
/// clusters, Zipf-skewed marginals (the original has 11.6M rows; pass the
/// row count you can afford).
Result<Table> MakeDmv(size_t num_rows, uint64_t seed = 7);

/// Census-like: 13 mixed columns, moderate correlation.
Result<Table> MakeCensus(size_t num_rows, uint64_t seed = 11);

/// Forest-like: 10 numeric columns (cartographic variables), mild
/// correlation.
Result<Table> MakeForest(size_t num_rows, uint64_t seed = 13);

/// Power-like: 7 numeric columns, very strong correlation (household
/// electric readings).
Result<Table> MakePower(size_t num_rows, uint64_t seed = 17);

}  // namespace confcard

#endif  // CONFCARD_DATA_DATASETS_H_
