#include "data/multitable.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace confcard {

Status Database::AddTable(Table table) {
  if (HasTable(table.name())) {
    return Status::AlreadyExists("table '" + table.name() + "'");
  }
  tables_.push_back(std::move(table));
  return Status::OK();
}

bool Database::HasTable(const std::string& name) const {
  for (const Table& t : tables_) {
    if (t.name() == name) return true;
  }
  return false;
}

const Table& Database::table(const std::string& name) const {
  for (const Table& t : tables_) {
    if (t.name() == name) return t;
  }
  CONFCARD_CHECK_MSG(false, ("no such table: " + name).c_str());
  return tables_.front();  // unreachable
}

std::vector<JoinEdge> Database::EdgesAmong(
    const std::vector<std::string>& names) const {
  auto contains = [&](const std::string& n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  std::vector<JoinEdge> out;
  for (const JoinEdge& e : edges_) {
    if (contains(e.left_table) && contains(e.right_table)) out.push_back(e);
  }
  return out;
}

namespace {

// Fixed pseudo-random map (same construction as the single-table
// generator) used to correlate dimension attributes with their key.
int64_t HashMap64(int64_t value, uint64_t salt, int64_t modulus) {
  uint64_t z = static_cast<uint64_t>(value) * 0x9E3779B97F4A7C15ULL + salt;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<int64_t>(z % static_cast<uint64_t>(modulus));
}

// Identity key column 0..n-1.
Column KeyColumn(const std::string& name, size_t n) {
  std::vector<double> codes(n);
  for (size_t i = 0; i < n; ++i) codes[i] = static_cast<double>(i);
  return Column::Categorical(name, static_cast<int64_t>(n), std::move(codes));
}

// Categorical attribute correlated with an existing key/code column:
// with probability `corr` the value is a fixed function of the source
// code, otherwise an independent Zipf draw.
Column CorrelatedAttr(const std::string& name, const std::vector<double>& src,
                      int64_t domain, double skew, double corr, Rng& rng) {
  ZipfDistribution marginal(static_cast<uint64_t>(domain), skew);
  uint64_t salt = rng.Next();
  std::vector<double> out(src.size());
  for (size_t i = 0; i < src.size(); ++i) {
    if (rng.NextDouble() < corr) {
      out[i] = static_cast<double>(
          HashMap64(static_cast<int64_t>(src[i]), salt, domain));
    } else {
      out[i] = static_cast<double>(marginal.Sample(rng));
    }
  }
  return Column::Categorical(name, domain, std::move(out));
}

// Skewed foreign-key column over [0, dim_rows): Zipf over a fixed random
// permutation so the hot keys are spread across the key space.
std::vector<double> SkewedFks(size_t n, size_t dim_rows, double skew,
                              Rng& rng) {
  ZipfDistribution zipf(static_cast<uint64_t>(dim_rows), skew);
  std::vector<uint64_t> perm(dim_rows);
  for (size_t i = 0; i < dim_rows; ++i) perm[i] = i;
  rng.Shuffle(perm);
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(perm[zipf.Sample(rng)]);
  }
  return out;
}

}  // namespace

Result<Database> MakeDsbLike(size_t fact_rows, uint64_t seed) {
  Rng rng(seed);
  Database db;

  const size_t n_date = std::max<size_t>(64, fact_rows / 200);
  const size_t n_store = std::max<size_t>(8, fact_rows / 2000);
  const size_t n_item = std::max<size_t>(32, fact_rows / 100);
  const size_t n_customer = std::max<size_t>(32, fact_rows / 50);

  {  // date_dim(d_date_sk, d_year, d_moy, d_dow)
    Column pk = KeyColumn("d_date_sk", n_date);
    std::vector<double> src = pk.data();
    std::vector<Column> cols;
    cols.push_back(std::move(pk));
    cols.push_back(CorrelatedAttr("d_year", src, 6, 0.0, 0.95, rng));
    cols.push_back(CorrelatedAttr("d_moy", src, 12, 0.0, 0.9, rng));
    cols.push_back(CorrelatedAttr("d_dow", src, 7, 0.0, 0.9, rng));
    CONFCARD_ASSIGN_OR_RETURN(Table t, Table::Make("date_dim", std::move(cols)));
    CONFCARD_RETURN_NOT_OK(db.AddTable(std::move(t)));
  }
  {  // store(s_store_sk, s_state, s_county)
    Column pk = KeyColumn("s_store_sk", n_store);
    std::vector<double> src = pk.data();
    std::vector<Column> cols;
    cols.push_back(std::move(pk));
    cols.push_back(CorrelatedAttr("s_state", src, 10, 0.8, 0.85, rng));
    cols.push_back(CorrelatedAttr("s_county", src, 25, 0.6, 0.85, rng));
    CONFCARD_ASSIGN_OR_RETURN(Table t, Table::Make("store", std::move(cols)));
    CONFCARD_RETURN_NOT_OK(db.AddTable(std::move(t)));
  }
  {  // item(i_item_sk, i_category, i_brand, i_class)
    Column pk = KeyColumn("i_item_sk", n_item);
    std::vector<double> src = pk.data();
    std::vector<Column> cols;
    cols.push_back(std::move(pk));
    cols.push_back(CorrelatedAttr("i_category", src, 10, 0.5, 0.9, rng));
    cols.push_back(CorrelatedAttr("i_brand", src, 50, 1.0, 0.8, rng));
    cols.push_back(CorrelatedAttr("i_class", src, 20, 0.7, 0.85, rng));
    CONFCARD_ASSIGN_OR_RETURN(Table t, Table::Make("item", std::move(cols)));
    CONFCARD_RETURN_NOT_OK(db.AddTable(std::move(t)));
  }
  {  // customer(c_customer_sk, c_state, c_birth_year)
    Column pk = KeyColumn("c_customer_sk", n_customer);
    std::vector<double> src = pk.data();
    std::vector<Column> cols;
    cols.push_back(std::move(pk));
    cols.push_back(CorrelatedAttr("c_state", src, 20, 1.0, 0.7, rng));
    cols.push_back(CorrelatedAttr("c_birth_year", src, 60, 0.2, 0.6, rng));
    CONFCARD_ASSIGN_OR_RETURN(Table t,
                              Table::Make("customer", std::move(cols)));
    CONFCARD_RETURN_NOT_OK(db.AddTable(std::move(t)));
  }
  {  // store_sales fact: skewed FKs + a few measures
    std::vector<double> date_fk = SkewedFks(fact_rows, n_date, 0.6, rng);
    std::vector<double> store_fk = SkewedFks(fact_rows, n_store, 1.0, rng);
    std::vector<double> item_fk = SkewedFks(fact_rows, n_item, 1.1, rng);
    std::vector<double> cust_fk = SkewedFks(fact_rows, n_customer, 0.9, rng);
    std::vector<double> quantity(fact_rows), price(fact_rows);
    for (size_t i = 0; i < fact_rows; ++i) {
      quantity[i] = static_cast<double>(1 + rng.NextUint64(100));
      // Price correlates with the item: hot items are cheap items.
      price[i] = 1.0 + std::fmod(item_fk[i] * 13.37, 200.0) +
                 5.0 * rng.NextGaussian();
      if (price[i] < 1.0) price[i] = 1.0;
    }
    std::vector<Column> cols;
    cols.push_back(Column::Categorical("ss_sold_date_sk",
                                       static_cast<int64_t>(n_date),
                                       std::move(date_fk)));
    cols.push_back(Column::Categorical(
        "ss_store_sk", static_cast<int64_t>(n_store), std::move(store_fk)));
    cols.push_back(Column::Categorical(
        "ss_item_sk", static_cast<int64_t>(n_item), std::move(item_fk)));
    cols.push_back(Column::Categorical("ss_customer_sk",
                                       static_cast<int64_t>(n_customer),
                                       std::move(cust_fk)));
    cols.push_back(Column::Numeric("ss_quantity", std::move(quantity)));
    cols.push_back(Column::Numeric("ss_sales_price", std::move(price)));
    CONFCARD_ASSIGN_OR_RETURN(Table t,
                              Table::Make("store_sales", std::move(cols)));
    CONFCARD_RETURN_NOT_OK(db.AddTable(std::move(t)));
  }

  db.AddJoinEdge({"store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"});
  db.AddJoinEdge({"store_sales", "ss_store_sk", "store", "s_store_sk"});
  db.AddJoinEdge({"store_sales", "ss_item_sk", "item", "i_item_sk"});
  db.AddJoinEdge(
      {"store_sales", "ss_customer_sk", "customer", "c_customer_sk"});
  return db;
}

Result<Database> MakeImdbLike(size_t title_rows, uint64_t seed) {
  Rng rng(seed);
  Database db;

  const size_t n_titles = std::max<size_t>(64, title_rows);

  {  // title(id, kind_id, production_year)
    Column pk = KeyColumn("id", n_titles);
    std::vector<double> src = pk.data();
    Column kind = CorrelatedAttr("kind_id", src, 7, 1.2, 0.0, rng);
    Column year = CorrelatedAttr("production_year", src, 80, 0.9, 0.3, rng);
    std::vector<Column> cols;
    cols.push_back(std::move(pk));
    cols.push_back(std::move(kind));
    cols.push_back(std::move(year));
    CONFCARD_ASSIGN_OR_RETURN(Table t, Table::Make("title", std::move(cols)));
    CONFCARD_RETURN_NOT_OK(db.AddTable(std::move(t)));
  }

  // Satellite tables share the movie id with skewed fan-out; their
  // attributes correlate with *title* attributes through the shared key,
  // which is exactly the cross-table correlation that breaks the
  // independence assumption in Table I's Postgres experiment.
  struct SatelliteSpec {
    const char* table;
    double rows_per_title;
    double fk_skew;
    const char* attr;
    int64_t attr_domain;
    double attr_skew;
    double attr_corr;  // correlation of attr with the movie id
  };
  const SatelliteSpec kSatellites[] = {
      {"movie_companies", 2.0, 1.05, "company_type_id", 4, 1.0, 0.8},
      {"movie_info", 3.0, 1.1, "info_type_id", 30, 1.2, 0.7},
      {"movie_keyword", 2.5, 1.2, "keyword_id", 200, 1.3, 0.6},
      {"cast_info", 4.0, 1.15, "role_id", 11, 1.1, 0.75},
  };

  for (const SatelliteSpec& s : kSatellites) {
    size_t n = static_cast<size_t>(
        std::max(64.0, s.rows_per_title * static_cast<double>(n_titles)));
    std::vector<double> movie_id = SkewedFks(n, n_titles, s.fk_skew, rng);
    Column attr =
        CorrelatedAttr(s.attr, movie_id, s.attr_domain, s.attr_skew,
                       s.attr_corr, rng);
    std::vector<Column> cols;
    cols.push_back(Column::Categorical(
        "movie_id", static_cast<int64_t>(n_titles), std::move(movie_id)));
    cols.push_back(std::move(attr));
    CONFCARD_ASSIGN_OR_RETURN(Table t, Table::Make(s.table, std::move(cols)));
    CONFCARD_RETURN_NOT_OK(db.AddTable(std::move(t)));
    db.AddJoinEdge({"title", "id", s.table, "movie_id"});
  }
  return db;
}

}  // namespace confcard
