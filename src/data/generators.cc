#include "data/generators.h"

#include <cmath>

#include "common/rng.h"

namespace confcard {
namespace {

// Fixed pseudo-random mapping used for categorical parent->child
// determinism; stable across runs so correlation structure is
// reproducible.
int64_t HashMap64(int64_t value, uint64_t salt, int64_t modulus) {
  uint64_t z = static_cast<uint64_t>(value) * 0x9E3779B97F4A7C15ULL + salt;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<int64_t>(z % static_cast<uint64_t>(modulus));
}

double Clip(double v, double lo, double hi) {
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

Status Validate(const TableSpec& spec) {
  if (spec.columns.empty()) {
    return Status::InvalidArgument("table spec has no columns");
  }
  for (size_t i = 0; i < spec.columns.size(); ++i) {
    const ColumnSpec& c = spec.columns[i];
    if (c.kind == ColumnKind::kCategorical && c.domain_size <= 0) {
      return Status::InvalidArgument("column '" + c.name +
                                     "': domain_size must be positive");
    }
    if (c.kind == ColumnKind::kNumeric && !(c.num_min < c.num_max)) {
      return Status::InvalidArgument("column '" + c.name +
                                     "': num_min must be < num_max");
    }
    if (c.parent >= static_cast<int>(i)) {
      return Status::InvalidArgument("column '" + c.name +
                                     "': parent must be an earlier column");
    }
    if (c.correlation < 0.0 || c.correlation > 1.0) {
      return Status::InvalidArgument("column '" + c.name +
                                     "': correlation must be in [0,1]");
    }
  }
  return Status::OK();
}

}  // namespace

Result<Table> GenerateTable(const TableSpec& spec) {
  CONFCARD_RETURN_NOT_OK(Validate(spec));
  Rng rng(spec.seed);

  const size_t num_cols = spec.columns.size();
  std::vector<std::vector<double>> cells(num_cols);
  for (auto& c : cells) c.resize(spec.num_rows);

  // Per-column marginal samplers, built once.
  std::vector<ZipfDistribution> zipfs;
  zipfs.reserve(num_cols);
  for (const ColumnSpec& c : spec.columns) {
    if (c.kind == ColumnKind::kCategorical) {
      zipfs.emplace_back(static_cast<uint64_t>(c.domain_size), c.zipf_skew);
    } else {
      zipfs.emplace_back(1, 0.0);  // placeholder, unused
    }
  }

  // Per-column salt so distinct children of the same parent get distinct
  // deterministic maps.
  std::vector<uint64_t> salts(num_cols);
  for (size_t i = 0; i < num_cols; ++i) salts[i] = rng.Next();

  for (size_t row = 0; row < spec.num_rows; ++row) {
    for (size_t ci = 0; ci < num_cols; ++ci) {
      const ColumnSpec& c = spec.columns[ci];
      const bool follow_parent =
          c.parent >= 0 && rng.NextDouble() < c.correlation;

      if (c.kind == ColumnKind::kCategorical) {
        if (follow_parent) {
          const ColumnSpec& p = spec.columns[static_cast<size_t>(c.parent)];
          double pv = cells[static_cast<size_t>(c.parent)][row];
          int64_t pcode;
          if (p.kind == ColumnKind::kCategorical) {
            pcode = static_cast<int64_t>(pv);
          } else {
            // Quantize the numeric parent to a coarse bucket so nearby
            // parent values map to the same child code.
            double t = (pv - p.num_min) / (p.num_max - p.num_min);
            pcode = static_cast<int64_t>(Clip(t, 0.0, 1.0) * 63.0);
          }
          cells[ci][row] = static_cast<double>(
              HashMap64(pcode, salts[ci], c.domain_size));
        } else {
          cells[ci][row] = static_cast<double>(zipfs[ci].Sample(rng));
        }
      } else {
        double v;
        switch (c.dist) {
          case NumericDist::kUniform:
            v = rng.NextDouble(c.num_min, c.num_max);
            break;
          case NumericDist::kGaussian: {
            double mid = 0.5 * (c.num_min + c.num_max);
            double sd = (c.num_max - c.num_min) / 6.0;
            v = Clip(mid + sd * rng.NextGaussian(), c.num_min, c.num_max);
            break;
          }
          case NumericDist::kExponential: {
            double span = c.num_max - c.num_min;
            double u = rng.NextDouble();
            if (u < 1e-300) u = 1e-300;
            // Rate such that P(X > span) ~= 1%.
            double rate = 4.605 / span;  // -ln(0.01)
            v = Clip(c.num_min - std::log(u) / rate, c.num_min, c.num_max);
            break;
          }
          default:
            v = rng.NextDouble(c.num_min, c.num_max);
        }
        if (follow_parent) {
          const ColumnSpec& p = spec.columns[static_cast<size_t>(c.parent)];
          double pv = cells[static_cast<size_t>(c.parent)][row];
          double t;  // parent position in [0, 1]
          if (p.kind == ColumnKind::kCategorical) {
            t = static_cast<double>(HashMap64(static_cast<int64_t>(pv),
                                              salts[ci], 1024)) /
                1023.0;
          } else {
            t = Clip((pv - p.num_min) / (p.num_max - p.num_min), 0.0, 1.0);
          }
          double span = c.num_max - c.num_min;
          // Affine in the parent plus 5% relative Gaussian jitter.
          v = Clip(c.num_min + t * span + 0.05 * span * rng.NextGaussian(),
                   c.num_min, c.num_max);
        }
        cells[ci][row] = v;
      }
    }
  }

  std::vector<Column> columns;
  columns.reserve(num_cols);
  for (size_t ci = 0; ci < num_cols; ++ci) {
    const ColumnSpec& c = spec.columns[ci];
    if (c.kind == ColumnKind::kCategorical) {
      columns.push_back(
          Column::Categorical(c.name, c.domain_size, std::move(cells[ci])));
    } else {
      columns.push_back(Column::Numeric(c.name, std::move(cells[ci])));
    }
  }
  return Table::Make(spec.name, std::move(columns));
}

}  // namespace confcard
