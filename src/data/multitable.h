// Multi-table schemas for the join-query experiments (Figures 3-4 and
// Table I). Stand-ins for TPC-DS/DSB (star schema around a sales fact
// table) and for the IMDB schema behind the JOB benchmark (many
// satellite tables sharing a movie_id key, with skewed fan-out and
// attribute/key correlation — the regime where independence-assuming
// estimators underestimate).
#ifndef CONFCARD_DATA_MULTITABLE_H_
#define CONFCARD_DATA_MULTITABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace confcard {

/// A PK-FK (or key-key) equi-join edge between two tables.
struct JoinEdge {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;
};

/// A set of named tables plus the join edges connecting them.
class Database {
 public:
  Database() = default;

  /// Adds a table; fails on duplicate names.
  Status AddTable(Table table);

  bool HasTable(const std::string& name) const;
  /// Precondition: the table exists.
  const Table& table(const std::string& name) const;
  const std::vector<Table>& tables() const { return tables_; }

  void AddJoinEdge(JoinEdge edge) { edges_.push_back(std::move(edge)); }
  const std::vector<JoinEdge>& join_edges() const { return edges_; }

  /// Join edges that connect two tables of `names` (either direction).
  std::vector<JoinEdge> EdgesAmong(
      const std::vector<std::string>& names) const;

 private:
  std::vector<Table> tables_;
  std::vector<JoinEdge> edges_;
};

/// DSB/TPC-DS-like star schema: store_sales fact joined to date_dim,
/// store, item, customer. `fact_rows` sizes the fact table; dimensions
/// scale as published ratios. FK distributions are Zipf-skewed and item
/// attributes correlate with sales fan-out.
Result<Database> MakeDsbLike(size_t fact_rows, uint64_t seed = 23);

/// IMDB/JOB-like snowflake: title plus satellite tables
/// (movie_companies, movie_info, movie_keyword, cast_info) sharing the
/// movie id with skewed fan-outs, and attributes correlated with title
/// attributes — reproducing JOB's correlated-join underestimation.
Result<Database> MakeImdbLike(size_t title_rows, uint64_t seed = 29);

}  // namespace confcard

#endif  // CONFCARD_DATA_MULTITABLE_H_
