#include "data/datasets.h"

#include "data/generators.h"

namespace confcard {
namespace {

ColumnSpec Cat(std::string name, int64_t domain, double skew, int parent = -1,
               double corr = 0.0) {
  ColumnSpec c;
  c.name = std::move(name);
  c.kind = ColumnKind::kCategorical;
  c.domain_size = domain;
  c.zipf_skew = skew;
  c.parent = parent;
  c.correlation = corr;
  return c;
}

ColumnSpec Num(std::string name, double lo, double hi, NumericDist dist,
               int parent = -1, double corr = 0.0) {
  ColumnSpec c;
  c.name = std::move(name);
  c.kind = ColumnKind::kNumeric;
  c.num_min = lo;
  c.num_max = hi;
  c.dist = dist;
  c.parent = parent;
  c.correlation = corr;
  return c;
}

}  // namespace

Result<Table> MakeDmv(size_t num_rows, uint64_t seed) {
  // Mirrors the NY DMV vehicle registration table: mostly categorical,
  // highly skewed, with clusters of strongly dependent attributes
  // (record/registration class, body type/fuel/use, county/city).
  TableSpec spec;
  spec.name = "dmv";
  spec.num_rows = num_rows;
  spec.seed = seed;
  spec.columns = {
      Cat("record_type", 4, 1.2),
      Cat("reg_class", 70, 1.1, /*parent=*/0, /*corr=*/0.85),
      Cat("state", 60, 1.6),
      Cat("county", 65, 1.0, /*parent=*/2, /*corr=*/0.7),
      Cat("body_type", 35, 1.3, /*parent=*/1, /*corr=*/0.8),
      Cat("fuel_type", 9, 1.5, /*parent=*/4, /*corr=*/0.75),
      Cat("color", 20, 0.8),
      Cat("scofflaw", 2, 2.0),
      Cat("suspension", 2, 2.2),
      Cat("revoked", 2, 2.5),
      Num("max_gross_weight", 0.0, 80000.0, NumericDist::kExponential,
          /*parent=*/4, /*corr=*/0.6),
  };
  return GenerateTable(spec);
}

Result<Table> MakeCensus(size_t num_rows, uint64_t seed) {
  // Mirrors UCI Census/Adult: demographic categoricals plus numeric
  // age/hours/gains with moderate dependence on occupation/education.
  TableSpec spec;
  spec.name = "census";
  spec.num_rows = num_rows;
  spec.seed = seed;
  spec.columns = {
      Num("age", 17.0, 90.0, NumericDist::kGaussian),
      Cat("workclass", 9, 1.4),
      Cat("education", 16, 0.9),
      Cat("education_num", 16, 0.9, /*parent=*/2, /*corr=*/0.95),
      Cat("marital_status", 7, 1.0, /*parent=*/0, /*corr=*/0.5),
      Cat("occupation", 15, 0.7, /*parent=*/1, /*corr=*/0.6),
      Cat("relationship", 6, 1.0, /*parent=*/4, /*corr=*/0.7),
      Cat("race", 5, 1.8),
      Cat("sex", 2, 0.3),
      Num("capital_gain", 0.0, 100000.0, NumericDist::kExponential,
          /*parent=*/5, /*corr=*/0.4),
      Num("capital_loss", 0.0, 4500.0, NumericDist::kExponential),
      Num("hours_per_week", 1.0, 99.0, NumericDist::kGaussian, /*parent=*/5,
          /*corr=*/0.5),
      Cat("native_country", 42, 2.0),
  };
  return GenerateTable(spec);
}

Result<Table> MakeForest(size_t num_rows, uint64_t seed) {
  // Mirrors UCI Covertype's 10 cartographic numeric attributes; hillshade
  // and distance columns correlate with elevation/aspect.
  TableSpec spec;
  spec.name = "forest";
  spec.num_rows = num_rows;
  spec.seed = seed;
  spec.columns = {
      Num("elevation", 1850.0, 3860.0, NumericDist::kGaussian),
      Num("aspect", 0.0, 360.0, NumericDist::kUniform),
      Num("slope", 0.0, 66.0, NumericDist::kExponential),
      Num("horiz_dist_hydro", 0.0, 1400.0, NumericDist::kExponential,
          /*parent=*/0, /*corr=*/0.35),
      Num("vert_dist_hydro", -170.0, 600.0, NumericDist::kGaussian,
          /*parent=*/3, /*corr=*/0.7),
      Num("horiz_dist_road", 0.0, 7120.0, NumericDist::kExponential,
          /*parent=*/0, /*corr=*/0.3),
      Num("hillshade_9am", 0.0, 254.0, NumericDist::kGaussian, /*parent=*/1,
          /*corr=*/0.6),
      Num("hillshade_noon", 99.0, 254.0, NumericDist::kGaussian,
          /*parent=*/2, /*corr=*/0.5),
      Num("hillshade_3pm", 0.0, 254.0, NumericDist::kGaussian, /*parent=*/6,
          /*corr=*/0.65),
      Num("horiz_dist_fire", 0.0, 7170.0, NumericDist::kExponential,
          /*parent=*/5, /*corr=*/0.4),
  };
  return GenerateTable(spec);
}

Result<Table> MakePower(size_t num_rows, uint64_t seed) {
  // Mirrors UCI Household Power Consumption: 7 numeric channels where
  // global active power drives intensity and sub-metering channels.
  TableSpec spec;
  spec.name = "power";
  spec.num_rows = num_rows;
  spec.seed = seed;
  spec.columns = {
      Num("global_active_power", 0.08, 11.0, NumericDist::kExponential),
      Num("global_reactive_power", 0.0, 1.4, NumericDist::kExponential,
          /*parent=*/0, /*corr=*/0.5),
      Num("voltage", 223.0, 254.0, NumericDist::kGaussian, /*parent=*/0,
          /*corr=*/0.3),
      Num("global_intensity", 0.2, 48.4, NumericDist::kExponential,
          /*parent=*/0, /*corr=*/0.95),
      Num("sub_metering_1", 0.0, 88.0, NumericDist::kExponential,
          /*parent=*/0, /*corr=*/0.6),
      Num("sub_metering_2", 0.0, 80.0, NumericDist::kExponential,
          /*parent=*/0, /*corr=*/0.6),
      Num("sub_metering_3", 0.0, 31.0, NumericDist::kExponential,
          /*parent=*/3, /*corr=*/0.7),
  };
  return GenerateTable(spec);
}

}  // namespace confcard
