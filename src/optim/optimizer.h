// Selinger-style dynamic-programming join-order optimizer over left-deep
// hash-join plans. Cardinality estimates come from PgEstimator, with an
// optional per-estimate adjustment hook — the mechanism of the Table I
// experiment, where the hook replaces Est(Q) with the conformal upper
// bound Est(Q) + delta (after Cai et al.'s pessimistic-cardinality
// integration the paper builds on).
#ifndef CONFCARD_OPTIM_OPTIMIZER_H_
#define CONFCARD_OPTIM_OPTIMIZER_H_

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "optim/pg_estimator.h"
#include "query/join_query.h"

namespace confcard {

/// Physical operator for one join step.
enum class JoinOp {
  kHashJoin,    // cost ~ build + probe + output
  kNestedLoop,  // cost ~ outer * inner * kNestedLoopFactor + output;
                // cheap for tiny inputs, catastrophic when the outer
                // cardinality was underestimated
};

/// Per-tuple cost factor of the nested-loop join relative to streaming a
/// tuple through a hash join.
inline constexpr double kNestedLoopFactor = 0.2;

/// Cost-model parameters. The spill rule models the memory cliff of
/// real hash joins: when the smaller input exceeds the work-mem budget
/// the join spills and every tuple is written and re-read
/// (`spill_factor` x). Optimizers pay this cliff when they UNDERestimate
/// an input — precisely the failure pessimistic PI bounds prevent
/// (Table I).
struct CostModel {
  double nested_loop_factor = kNestedLoopFactor;
  /// Rows that fit in memory for a hash build; infinite disables
  /// spill modeling.
  double spill_threshold = std::numeric_limits<double>::infinity();
  double spill_factor = 3.0;

  /// Cost of one hash-join step with input sizes `outer`/`inner` and
  /// output size `out`.
  double HashCost(double outer, double inner, double out) const {
    const double stream = outer + inner + out;
    if (std::min(outer, inner) > spill_threshold) {
      return spill_factor * (outer + inner) + out;
    }
    return stream;
  }
  /// Cost of one nested-loop step.
  double NestedLoopCost(double outer, double inner, double out) const {
    return nested_loop_factor * outer * inner + out;
  }
};

/// A chosen left-deep join order plus its estimated cost.
struct JoinPlan {
  /// Tables in execution order (first is the build-side seed).
  std::vector<std::string> order;
  /// Operator for each join step (size = order.size() - 1).
  std::vector<JoinOp> ops;
  /// Optimizer's cost under its own estimates.
  double estimated_cost = 0.0;
  /// Optimizer's estimate of the final join cardinality.
  double estimated_cardinality = 0.0;
};

/// Hook applied to every multi-table cardinality estimate the optimizer
/// requests, receiving the subset of tables being estimated. Identity by
/// default. The Table I experiment injects the PI upper bound here: the
/// paper calibrates delta on the *selectivity* scale, so the additive
/// inflation of a subquery is delta * (cartesian size of its base
/// tables) — pessimism that scales with the subquery.
using EstimateAdjuster = std::function<double(
    double raw_estimate, const std::vector<std::string>& tables)>;

/// DP join-order optimizer.
class JoinOptimizer {
 public:
  explicit JoinOptimizer(const PgEstimator& estimator);

  /// Installs an adjuster for join (>= 2 tables) estimates.
  void SetAdjuster(EstimateAdjuster adjuster);

  /// Replaces the cost model (default: no spill modeling).
  void SetCostModel(const CostModel& model) { cost_model_ = model; }
  const CostModel& cost_model() const { return cost_model_; }

  /// Picks the cheapest left-deep order for `query` by exact DP over
  /// connected table subsets. Fails when the join graph is disconnected
  /// or the query has more than 20 tables.
  Result<JoinPlan> Optimize(const JoinQuery& query) const;

 private:
  const PgEstimator* estimator_;
  EstimateAdjuster adjuster_;
  CostModel cost_model_;
};

}  // namespace confcard

#endif  // CONFCARD_OPTIM_OPTIMIZER_H_
