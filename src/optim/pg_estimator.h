// Postgres-style traditional join cardinality estimator: per-column
// statistics (exact MCV-complete tables / equi-depth histograms),
// attribute-value independence within a table, and the System-R distinct-
// count formula 1/max(V(l), V(r)) per equi-join edge. This is the
// estimator the Table I experiment wraps with a conformal upper bound —
// deliberately *not* learned, matching the paper's setup where no
// training data is needed.
#ifndef CONFCARD_OPTIM_PG_ESTIMATOR_H_
#define CONFCARD_OPTIM_PG_ESTIMATOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ce/histogram.h"
#include "data/multitable.h"
#include "query/join_query.h"

namespace confcard {

/// Traditional statistics-based estimator over a Database.
class PgEstimator {
 public:
  explicit PgEstimator(const Database& db, int histogram_buckets = 64);

  /// Estimated rows of `table` surviving the predicates of `query`
  /// scoped to it (AVI across predicates).
  double EstimateBaseRows(const JoinQuery& query,
                          const std::string& table) const;

  /// Estimated cardinality of joining the subset `tables` of `query`
  /// (using every applicable join edge). Join-order independent.
  double EstimateJoinCardinality(const JoinQuery& query,
                                 const std::vector<std::string>& tables)
      const;

  /// Full-query estimate: all of query.tables.
  double EstimateCardinality(const JoinQuery& query) const;

  /// Distinct count of `table.column` (clamped to >= 1).
  double DistinctCount(const std::string& table,
                       const std::string& column) const;

 private:
  const Database* db_;
  std::unordered_map<std::string, HistogramEstimator> stats_;
};

}  // namespace confcard

#endif  // CONFCARD_OPTIM_PG_ESTIMATOR_H_
