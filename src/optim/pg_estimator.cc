#include "optim/pg_estimator.h"

#include <algorithm>

#include "common/check.h"

namespace confcard {

PgEstimator::PgEstimator(const Database& db, int histogram_buckets)
    : db_(&db) {
  for (const Table& t : db.tables()) {
    stats_.emplace(t.name(), HistogramEstimator(t, histogram_buckets));
  }
}

double PgEstimator::EstimateBaseRows(const JoinQuery& query,
                                     const std::string& table) const {
  auto it = stats_.find(table);
  CONFCARD_CHECK_MSG(it != stats_.end(), table.c_str());
  double sel = 1.0;
  for (const TablePredicate& tp : query.predicates) {
    if (tp.table != table) continue;
    sel *= it->second.PredicateSelectivity(tp.pred);
  }
  return sel * static_cast<double>(db_->table(table).num_rows());
}

double PgEstimator::DistinctCount(const std::string& table,
                                  const std::string& column) const {
  const Column& col = db_->table(table).ColumnByName(column);
  return std::max<double>(1.0, static_cast<double>(col.distinct_count()));
}

double PgEstimator::EstimateJoinCardinality(
    const JoinQuery& query, const std::vector<std::string>& tables) const {
  double card = 1.0;
  for (const std::string& t : tables) {
    card *= EstimateBaseRows(query, t);
  }
  auto in_subset = [&](const std::string& t) {
    return std::find(tables.begin(), tables.end(), t) != tables.end();
  };
  for (const JoinEdge& e : query.joins) {
    if (!in_subset(e.left_table) || !in_subset(e.right_table)) continue;
    const double v = std::max(DistinctCount(e.left_table, e.left_column),
                              DistinctCount(e.right_table, e.right_column));
    card /= v;
  }
  return std::max(card, 0.0);
}

double PgEstimator::EstimateCardinality(const JoinQuery& query) const {
  return EstimateJoinCardinality(query, query.tables);
}

}  // namespace confcard
