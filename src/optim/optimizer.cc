#include "optim/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace confcard {

JoinOptimizer::JoinOptimizer(const PgEstimator& estimator)
    : estimator_(&estimator) {}

void JoinOptimizer::SetAdjuster(EstimateAdjuster adjuster) {
  adjuster_ = std::move(adjuster);
}

Result<JoinPlan> JoinOptimizer::Optimize(const JoinQuery& query) const {
  const size_t n = query.tables.size();
  if (n == 0) return Status::InvalidArgument("empty join query");
  if (n > 20) return Status::InvalidArgument("too many tables for exact DP");

  // Adjacency between table indices from the query's join edges.
  auto index_of = [&](const std::string& t) -> int {
    for (size_t i = 0; i < n; ++i) {
      if (query.tables[i] == t) return static_cast<int>(i);
    }
    return -1;
  };
  std::vector<uint32_t> adjacent(n, 0);
  for (const JoinEdge& e : query.joins) {
    int l = index_of(e.left_table);
    int r = index_of(e.right_table);
    if (l < 0 || r < 0) {
      return Status::InvalidArgument("join edge references unknown table");
    }
    adjacent[static_cast<size_t>(l)] |= 1u << r;
    adjacent[static_cast<size_t>(r)] |= 1u << l;
  }

  const uint32_t full = n == 32 ? ~0u : (1u << n) - 1;

  // Memoized cardinality of a subset (adjusted for multi-table subsets).
  std::vector<double> card(full + 1, -1.0);
  auto subset_card = [&](uint32_t mask) -> double {
    if (card[mask] >= 0.0) return card[mask];
    std::vector<std::string> tables;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) tables.push_back(query.tables[i]);
    }
    double est = estimator_->EstimateJoinCardinality(query, tables);
    if (tables.size() >= 2 && adjuster_) est = adjuster_(est, tables);
    card[mask] = std::max(est, 0.0);
    return card[mask];
  };

  struct DpEntry {
    double cost = std::numeric_limits<double>::infinity();
    uint32_t prev_mask = 0;
    int added = -1;
    JoinOp op = JoinOp::kHashJoin;
  };
  std::vector<DpEntry> dp(full + 1);

  for (size_t i = 0; i < n; ++i) {
    const uint32_t m = 1u << i;
    dp[m].cost = subset_card(m);  // scan cost of the filtered base table
    dp[m].added = static_cast<int>(i);
  }

  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (std::isinf(dp[mask].cost)) continue;
    // Try extending with any table adjacent to the subset.
    for (size_t i = 0; i < n; ++i) {
      const uint32_t bit = 1u << i;
      if (mask & bit) continue;
      if ((adjacent[i] & mask) == 0) continue;  // keep plans bushy-free & connected
      const uint32_t next = mask | bit;
      // Physical operator choice per step. Hash join streams both
      // inputs; nested loop is cheaper only for tiny inputs but blows
      // up quadratically — the operator real optimizers mis-pick when
      // cardinalities are underestimated.
      const double out = subset_card(next);
      const double hash_cost =
          cost_model_.HashCost(subset_card(mask), subset_card(bit), out);
      const double nl_cost = cost_model_.NestedLoopCost(
          subset_card(mask), subset_card(bit), out);
      const double step_cost = std::min(hash_cost, nl_cost);
      const JoinOp op = nl_cost < hash_cost ? JoinOp::kNestedLoop
                                            : JoinOp::kHashJoin;
      const double total = dp[mask].cost + step_cost;
      if (total < dp[next].cost) {
        dp[next].cost = total;
        dp[next].prev_mask = mask;
        dp[next].added = static_cast<int>(i);
        dp[next].op = op;
      }
    }
  }

  if (std::isinf(dp[full].cost)) {
    return Status::InvalidArgument("join graph is disconnected");
  }

  JoinPlan plan;
  plan.estimated_cost = dp[full].cost;
  plan.estimated_cardinality = subset_card(full);
  // Reconstruct the order and per-step operators.
  std::vector<int> rev;
  std::vector<JoinOp> rev_ops;
  uint32_t mask = full;
  while (mask != 0) {
    rev.push_back(dp[mask].added);
    rev_ops.push_back(dp[mask].op);
    mask = dp[mask].prev_mask;
  }
  for (size_t i = rev.size(); i-- > 0;) {
    plan.order.push_back(query.tables[static_cast<size_t>(rev[i])]);
    if (i + 1 < rev.size()) {  // the seed table has no join operator
      plan.ops.push_back(rev_ops[i]);
    }
  }
  return plan;
}

}  // namespace confcard
