// Minimal binary serialization for persisting trained models: a
// length-checked little-endian byte stream with a magic/version header.
// Not a general-purpose format — just enough to round-trip PODs,
// vectors and strings safely (every read validates remaining length).
#ifndef CONFCARD_COMMON_ARCHIVE_H_
#define CONFCARD_COMMON_ARCHIVE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace confcard {

/// Append-only byte sink.
class ArchiveWriter {
 public:
  /// Starts a stream tagged with `magic` (format id) and `version`.
  ArchiveWriter(uint32_t magic, uint32_t version);

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v);
  void WriteDouble(double v);
  void WriteFloat(float v);
  void WriteString(const std::string& s);

  void WriteDoubleVec(const std::vector<double>& v);
  void WriteFloatVec(const std::vector<float>& v);
  /// Same wire format as WriteFloatVec for callers whose buffer is not a
  /// std::vector<float> (e.g. nn::Tensor's default-init buffer).
  void WriteFloats(const float* data, size_t n);

  const std::vector<uint8_t>& bytes() const { return bytes_; }

  /// Writes the accumulated bytes to `path`.
  Status SaveToFile(const std::string& path) const;

 private:
  void Append(const void* data, size_t n);
  std::vector<uint8_t> bytes_;
};

/// Sequential reader over a byte buffer. Every accessor fails (sticky
/// error status) instead of reading past the end.
class ArchiveReader {
 public:
  /// Wraps a buffer and validates the magic/version header.
  ArchiveReader(std::vector<uint8_t> bytes, uint32_t expected_magic,
                uint32_t expected_version);

  /// Loads `path` into a reader.
  static Result<ArchiveReader> FromFile(const std::string& path,
                                        uint32_t expected_magic,
                                        uint32_t expected_version);

  uint32_t ReadU32();
  uint64_t ReadU64();
  int32_t ReadI32();
  double ReadDouble();
  float ReadFloat();
  std::string ReadString();
  std::vector<double> ReadDoubleVec();
  std::vector<float> ReadFloatVec();
  /// Reads a WriteFloatVec/WriteFloats payload into a caller-owned
  /// buffer of exactly `n` floats; fails (sticky status) on a length
  /// mismatch or truncation.
  void ReadFloatsInto(float* out, size_t n);

  /// OK iff no read has overrun and the header matched.
  const Status& status() const { return status_; }
  /// True when every byte has been consumed (a completeness check for
  /// loaders).
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  bool Take(void* out, size_t n);
  void Fail(const std::string& what);

  std::vector<uint8_t> bytes_;
  size_t pos_ = 0;
  Status status_;
};

}  // namespace confcard

#endif  // CONFCARD_COMMON_ARCHIVE_H_
