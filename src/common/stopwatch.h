// Wall-clock timing helper for the overhead experiments (Section IV).
#ifndef CONFCARD_COMMON_STOPWATCH_H_
#define CONFCARD_COMMON_STOPWATCH_H_

#include <chrono>

namespace confcard {

/// Monotonic stopwatch started at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace confcard

#endif  // CONFCARD_COMMON_STOPWATCH_H_
