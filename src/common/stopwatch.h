// Wall-clock timing helper for the overhead experiments (Section IV).
#ifndef CONFCARD_COMMON_STOPWATCH_H_
#define CONFCARD_COMMON_STOPWATCH_H_

#include <chrono>

namespace confcard {

/// Monotonic stopwatch started at construction. Accumulates running time
/// across Pause()/Resume() cycles, so a caller can exclude nested setup
/// work from a measurement; the Elapsed* readings report accumulated
/// running time only.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Discards all accumulated time and restarts in the running state.
  void Restart() {
    accumulated_ = Duration::zero();
    running_ = true;
    start_ = Clock::now();
  }

  /// Stops accumulating. No-op when already paused.
  void Pause() {
    if (!running_) return;
    accumulated_ += Clock::now() - start_;
    running_ = false;
  }

  /// Resumes accumulating. No-op when already running.
  void Resume() {
    if (running_) return;
    running_ = true;
    start_ = Clock::now();
  }

  bool IsRunning() const { return running_; }

  double ElapsedSeconds() const {
    Duration total = accumulated_;
    if (running_) total += Clock::now() - start_;
    return std::chrono::duration<double>(total).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  using Duration = Clock::duration;
  Clock::time_point start_;
  Duration accumulated_ = Duration::zero();
  bool running_ = true;
};

}  // namespace confcard

#endif  // CONFCARD_COMMON_STOPWATCH_H_
