// Deterministic fault injection. The paper's central claim is that
// learned estimators fail silently; this registry lets tests and the
// fault-sweep bench make them fail *on purpose* — reproducibly — so the
// guarded serving path (src/ce/guarded.h) can be exercised end to end.
//
// Faults are configured from the CONFCARD_FAULTS environment variable
// (or programmatically, for tests) as a semicolon-separated list of
//
//   <site>:<kind>@<rate>      e.g.  naru.forward:nan@0.02;io.csv:fail@0.1
//
// where <site> names an injection point compiled into the library,
// <kind> is one of
//   nan   — corrupt a produced value to quiet NaN
//   fail  — produce a negative sentinel value / an Internal error Status
//   slow  — sleep CONFCARD_FAULT_SLOW_US microseconds (default 5000)
// and <rate> is an injection probability in [0, 1].
//
// Determinism: whether a fault fires at a site is a pure function of
// (site, caller-supplied key, arm index, retry salt). Callers pass a key
// that is stable across runs and thread counts — a content hash of the
// query for model forwards, the model seed for training, a path hash for
// IO — so a fault sweep is bit-reproducible at any CONFCARD_THREADS and
// identical between batched and per-query execution.
//
// Overhead when disabled: Enabled() is one relaxed atomic load; every
// injection point is gated on it, so an unfaulted run takes a single
// predictable branch per site.
#ifndef CONFCARD_COMMON_FAULT_H_
#define CONFCARD_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace confcard {
namespace obs {
class Counter;
}  // namespace obs

namespace fault {

/// What an injection point should do when its fault fires.
enum class Kind {
  kNone = 0,
  kNan,
  kFail,
  kSlow,
};

/// "nan" / "fail" / "slow" / "none".
const char* KindToString(Kind kind);

/// One parsed arm of a CONFCARD_FAULTS spec.
struct FaultSpec {
  std::string site;
  Kind kind = Kind::kNone;
  double rate = 0.0;
};

/// Parses the CONFCARD_FAULTS grammar ("site:kind@rate;..."). Empty
/// input yields an empty list; malformed entries produce
/// InvalidArgument naming the offending token.
Result<std::vector<FaultSpec>> ParseFaultSpecs(std::string_view text);

/// Process-wide fault registry, configured once from CONFCARD_FAULTS at
/// first use. Configure/Clear must not race with in-flight Poll calls
/// (tests and benches reconfigure between runs, never during one).
class Registry {
 public:
  static Registry& Instance();

  /// Cheap hot-path gate: one relaxed atomic load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// The fault (if any) to inject at `site` for deterministic key
  /// `key`. Arms for the same site are evaluated in configuration order
  /// with independent hash streams; the first that fires wins. Bumps
  /// "fault.injected.<site>.<kind>" on injection.
  Kind Poll(std::string_view site, uint64_t key) const;

  /// Replaces the active spec (tests/benches). An empty string clears.
  Status ConfigureFromString(const std::string& text);
  /// Removes all faults and lowers the enabled gate.
  void Clear();

  /// Sleep duration injected for Kind::kSlow, in microseconds.
  uint64_t slow_micros() const { return slow_micros_; }
  void set_slow_micros(uint64_t us) { slow_micros_ = us; }
  /// Blocks the calling thread for slow_micros().
  void SleepSlow() const;

 private:
  Registry();

  struct Arm {
    Kind kind = Kind::kNone;
    double rate = 0.0;
    uint64_t salt = 0;             // per-arm hash stream separator
    obs::Counter* injected = nullptr;
  };
  struct Site {
    uint64_t site_hash = 0;
    std::vector<Arm> arms;
  };

  std::atomic<bool> enabled_{false};
  uint64_t slow_micros_ = 5000;
  std::map<std::string, Site, std::less<>> sites_;
};

/// Shorthand for Registry::Instance().enabled().
inline bool Enabled() { return Registry::Instance().enabled(); }

/// Deterministic key for string-identified call sites (file paths).
uint64_t KeyOf(std::string_view s);

/// Injection helper for value-producing sites (model forwards). Returns
/// `value` untouched when no fault fires; quiet NaN for kNan; -1.0 (an
/// impossible cardinality, caught by the guard's sanitizer) for kFail;
/// sleeps and then returns `value` for kSlow.
double PerturbValue(std::string_view site, uint64_t key, double value);

/// Injection helper for Status-producing sites (Train, IO). Returns
/// Internal("injected fault: <site>") for kFail; sleeps for kSlow and
/// returns OK; ignores kNan (no value to corrupt).
Status Check(std::string_view site, uint64_t key);

/// Mixes an attempt ordinal into every Poll on the current thread, so a
/// guarded retry of a deterministically-faulted query re-rolls the
/// injection dice instead of deterministically failing again (modelling
/// transient faults). RAII: restores the previous salt on destruction.
class ScopedRetrySalt {
 public:
  explicit ScopedRetrySalt(uint64_t salt);
  ~ScopedRetrySalt();

  ScopedRetrySalt(const ScopedRetrySalt&) = delete;
  ScopedRetrySalt& operator=(const ScopedRetrySalt&) = delete;

 private:
  uint64_t saved_;
};

}  // namespace fault
}  // namespace confcard

#endif  // CONFCARD_COMMON_FAULT_H_
