// Order statistics and summary helpers shared by the conformal layer and
// the evaluation harness.
#ifndef CONFCARD_COMMON_STATS_H_
#define CONFCARD_COMMON_STATS_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace confcard {

/// The conformal quantile q_{n,1-alpha}: the ceil((n+1)(1-alpha))-th
/// smallest value of `values` (1-indexed), as defined in Section III of
/// the paper. If ceil((n+1)(1-alpha)) > n — i.e. the calibration set is
/// too small for the requested coverage — returns +infinity, which yields
/// the conservative (trivial, later clipped) interval.
/// `values` is copied; the input is not reordered.
double ConformalQuantile(std::vector<double> values, double alpha);

/// Index (1-based rank) used by ConformalQuantile: ceil((n+1)(1-alpha)).
size_t ConformalRank(size_t n, double alpha);

/// Lower-tail conformal quantile q_{n,alpha}: the floor(alpha(n+1))-th
/// smallest value (companion to the upper quantile for Jackknife+
/// two-sided intervals). Returns -infinity when the rank underflows.
double ConformalQuantileLower(std::vector<double> values, double alpha);

/// Empirical percentile with linear interpolation (numpy 'linear'
/// convention); p in [0, 100]. Input is copied.
double Percentile(std::vector<double> values, double p);

/// Summary statistics over a sample.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double median = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Computes Summary over `values` (empty input yields a zeroed Summary).
Summary Summarize(const std::vector<double>& values);

/// Arithmetic mean (0 for empty input).
double Mean(const std::vector<double>& values);
/// Sample variance with Bessel's correction (0 for n < 2).
double Variance(const std::vector<double>& values);

}  // namespace confcard

#endif  // CONFCARD_COMMON_STATS_H_
