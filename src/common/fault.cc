#include "common/fault.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <thread>

#include "obs/metrics.h"

namespace confcard {
namespace fault {
namespace {

// Retry salt mixed into every Poll on this thread (see ScopedRetrySalt).
thread_local uint64_t g_retry_salt = 0;

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// splitmix64 finalizer: full-avalanche mixing of the decision inputs.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Uniform [0, 1) from the top 53 bits.
double ToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

const char* KindToString(Kind kind) {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kNan:
      return "nan";
    case Kind::kFail:
      return "fail";
    case Kind::kSlow:
      return "slow";
  }
  return "none";
}

Result<std::vector<FaultSpec>> ParseFaultSpecs(std::string_view text) {
  std::vector<FaultSpec> specs;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t semi = text.find(';', pos);
    std::string_view entry = Trim(
        text.substr(pos, semi == std::string_view::npos ? semi : semi - pos));
    pos = semi == std::string_view::npos ? text.size() + 1 : semi + 1;
    if (entry.empty()) continue;

    const size_t colon = entry.rfind(':');
    const size_t at = entry.rfind('@');
    if (colon == std::string_view::npos || at == std::string_view::npos ||
        at < colon) {
      return Status::InvalidArgument(
          "fault spec '" + std::string(entry) +
          "' is not of the form site:kind@rate");
    }
    FaultSpec spec;
    spec.site = std::string(Trim(entry.substr(0, colon)));
    if (spec.site.empty()) {
      return Status::InvalidArgument("fault spec '" + std::string(entry) +
                                     "' has an empty site");
    }
    const std::string_view kind = Trim(entry.substr(colon + 1, at - colon - 1));
    if (kind == "nan") {
      spec.kind = Kind::kNan;
    } else if (kind == "fail") {
      spec.kind = Kind::kFail;
    } else if (kind == "slow") {
      spec.kind = Kind::kSlow;
    } else {
      return Status::InvalidArgument("fault kind '" + std::string(kind) +
                                     "' is not nan|fail|slow");
    }
    const std::string rate_str(Trim(entry.substr(at + 1)));
    char* end = nullptr;
    spec.rate = std::strtod(rate_str.c_str(), &end);
    if (rate_str.empty() || end != rate_str.c_str() + rate_str.size() ||
        !std::isfinite(spec.rate) || spec.rate < 0.0 || spec.rate > 1.0) {
      return Status::InvalidArgument("fault rate '" + rate_str +
                                     "' is not a number in [0, 1]");
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

Registry& Registry::Instance() {
  static Registry* registry = new Registry();  // never destroyed
  return *registry;
}

Registry::Registry() {
  if (const char* slow = std::getenv("CONFCARD_FAULT_SLOW_US");
      slow != nullptr && slow[0] != '\0') {
    slow_micros_ = static_cast<uint64_t>(std::strtoull(slow, nullptr, 10));
  }
  const char* spec = std::getenv("CONFCARD_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return;
  const Status st = ConfigureFromString(spec);
  if (!st.ok()) {
    std::fprintf(stderr, "CONFCARD_FAULTS ignored: %s\n",
                 st.ToString().c_str());
  }
}

Status Registry::ConfigureFromString(const std::string& text) {
  CONFCARD_ASSIGN_OR_RETURN(std::vector<FaultSpec> specs,
                            ParseFaultSpecs(text));
  Clear();
  for (const FaultSpec& spec : specs) {
    Site& site = sites_[spec.site];
    site.site_hash = Fnv1a(spec.site);
    Arm arm;
    arm.kind = spec.kind;
    arm.rate = spec.rate;
    // Each arm draws from its own hash stream so stacking, say, nan@0.1
    // and fail@0.1 on one site injects each independently.
    arm.salt = Mix(site.site_hash ^ (site.arms.size() + 1));
    arm.injected = &obs::Metrics().GetCounter(
        "fault.injected." + spec.site + "." + KindToString(spec.kind));
    site.arms.push_back(arm);
  }
  enabled_.store(!sites_.empty(), std::memory_order_relaxed);
  return Status::OK();
}

void Registry::Clear() {
  enabled_.store(false, std::memory_order_relaxed);
  sites_.clear();
}

Kind Registry::Poll(std::string_view site, uint64_t key) const {
  if (!enabled()) return Kind::kNone;
  const auto it = sites_.find(site);
  if (it == sites_.end()) return Kind::kNone;
  for (const Arm& arm : it->second.arms) {
    if (arm.rate <= 0.0) continue;
    const uint64_t h =
        Mix(it->second.site_hash ^ Mix(key ^ arm.salt) ^ Mix(g_retry_salt));
    if (arm.rate >= 1.0 || ToUnit(h) < arm.rate) {
      arm.injected->Increment();
      return arm.kind;
    }
  }
  return Kind::kNone;
}

void Registry::SleepSlow() const {
  std::this_thread::sleep_for(std::chrono::microseconds(slow_micros_));
}

uint64_t KeyOf(std::string_view s) { return Fnv1a(s); }

double PerturbValue(std::string_view site, uint64_t key, double value) {
  const Registry& registry = Registry::Instance();
  switch (registry.Poll(site, key)) {
    case Kind::kNone:
      return value;
    case Kind::kNan:
      return std::numeric_limits<double>::quiet_NaN();
    case Kind::kFail:
      return -1.0;
    case Kind::kSlow:
      registry.SleepSlow();
      return value;
  }
  return value;
}

Status Check(std::string_view site, uint64_t key) {
  const Registry& registry = Registry::Instance();
  switch (registry.Poll(site, key)) {
    case Kind::kFail:
      return Status::Internal("injected fault: " + std::string(site));
    case Kind::kSlow:
      registry.SleepSlow();
      return Status::OK();
    default:
      return Status::OK();
  }
}

ScopedRetrySalt::ScopedRetrySalt(uint64_t salt) : saved_(g_retry_salt) {
  g_retry_salt = salt;
}

ScopedRetrySalt::~ScopedRetrySalt() { g_retry_salt = saved_; }

}  // namespace fault
}  // namespace confcard
