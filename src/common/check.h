// Invariant-checking macros. CONFCARD_CHECK aborts on violation in all
// build types (the library is exception-free, so programming errors fail
// fast instead of corrupting results). CONFCARD_DCHECK compiles out in
// NDEBUG builds.
#ifndef CONFCARD_COMMON_CHECK_H_
#define CONFCARD_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define CONFCARD_CHECK(cond)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define CONFCARD_CHECK_MSG(cond, msg)                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #cond, msg);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define CONFCARD_DCHECK(cond) \
  do {                        \
  } while (0)
#else
#define CONFCARD_DCHECK(cond) CONFCARD_CHECK(cond)
#endif

#endif  // CONFCARD_COMMON_CHECK_H_
