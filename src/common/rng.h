// Deterministic pseudo-random number generation. All randomness in the
// library flows through explicitly seeded Rng instances so experiments
// are reproducible run to run.
#ifndef CONFCARD_COMMON_RNG_H_
#define CONFCARD_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace confcard {

/// xoshiro256** PRNG. Fast, high quality, and (unlike std::mt19937)
/// guaranteed to produce identical streams across standard libraries.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator via splitmix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  /// UniformRandomBitGenerator interface (usable with <random> adaptors).
  result_type operator()() { return Next(); }

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t NextUint64(uint64_t n);
  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInt64(int64_t lo, int64_t hi);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);
  /// Standard normal via Box-Muller.
  double NextGaussian();
  /// Bernoulli draw.
  bool NextBool(double p_true = 0.5);

  /// Samples an index proportionally to `weights` (need not be normalized).
  /// Precondition: weights non-empty with non-negative entries and a
  /// positive sum.
  size_t NextCategorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    if (values.empty()) return;
    for (size_t i = values.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextUint64(i + 1));
      std::swap(values[i], values[j]);
    }
  }

  /// Returns a derived generator whose stream is independent of this one
  /// for practical purposes (seeded from the parent's output).
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Exact Zipf(s) sampler over ranks [0, n). Precomputes the CDF once so
/// repeated draws cost one binary search. s = 0 degenerates to uniform.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double s);

  /// Draws a rank in [0, n); rank 0 is the most frequent.
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }
  /// P(rank = k).
  double Pmf(uint64_t k) const;

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k), cdf_.back() == 1
};

/// Discrete sampler over arbitrary non-negative weights with a
/// precomputed CDF (binary search per draw).
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(const std::vector<double>& weights);

  size_t Sample(Rng& rng) const;
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace confcard

#endif  // CONFCARD_COMMON_RNG_H_
