#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/fault.h"

namespace confcard {

std::vector<std::string> SplitCsvLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<std::vector<std::vector<std::string>>> ReadCsv(
    const std::string& path, bool has_header,
    std::vector<std::string>* header, char delim) {
  if (fault::Enabled()) {
    CONFCARD_RETURN_NOT_OK(fault::Check("io.csv", fault::KeyOf(path)));
  }
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = SplitCsvLine(line, delim);
    if (first && has_header) {
      if (header != nullptr) *header = std::move(fields);
      first = false;
      continue;
    }
    first = false;
    rows.push_back(std::move(fields));
  }
  return rows;
}

namespace {

std::string QuoteIfNeeded(const std::string& field, char delim) {
  if (field.find(delim) == std::string::npos &&
      field.find('"') == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void WriteRow(std::ofstream& out, const std::vector<std::string>& row,
              char delim) {
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out << delim;
    out << QuoteIfNeeded(row[i], delim);
  }
  out << '\n';
}

}  // namespace

Status WriteCsv(const std::string& path,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows,
                char delim) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  if (!header.empty()) WriteRow(out, header, delim);
  for (const auto& row : rows) WriteRow(out, row, delim);
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

}  // namespace confcard
