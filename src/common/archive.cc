#include "common/archive.h"

#include <fstream>

#include "common/fault.h"

namespace confcard {

ArchiveWriter::ArchiveWriter(uint32_t magic, uint32_t version) {
  WriteU32(magic);
  WriteU32(version);
}

void ArchiveWriter::Append(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + n);
}

void ArchiveWriter::WriteU32(uint32_t v) { Append(&v, sizeof(v)); }
void ArchiveWriter::WriteU64(uint64_t v) { Append(&v, sizeof(v)); }
void ArchiveWriter::WriteI32(int32_t v) { Append(&v, sizeof(v)); }
void ArchiveWriter::WriteDouble(double v) { Append(&v, sizeof(v)); }
void ArchiveWriter::WriteFloat(float v) { Append(&v, sizeof(v)); }

void ArchiveWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  Append(s.data(), s.size());
}

void ArchiveWriter::WriteDoubleVec(const std::vector<double>& v) {
  WriteU64(v.size());
  Append(v.data(), v.size() * sizeof(double));
}

void ArchiveWriter::WriteFloatVec(const std::vector<float>& v) {
  WriteFloats(v.data(), v.size());
}

void ArchiveWriter::WriteFloats(const float* data, size_t n) {
  WriteU64(n);
  Append(data, n * sizeof(float));
}

Status ArchiveWriter::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(bytes_.data()),
            static_cast<std::streamsize>(bytes_.size()));
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

ArchiveReader::ArchiveReader(std::vector<uint8_t> bytes,
                             uint32_t expected_magic,
                             uint32_t expected_version)
    : bytes_(std::move(bytes)) {
  const uint32_t magic = ReadU32();
  const uint32_t version = ReadU32();
  if (!status_.ok()) return;
  if (magic != expected_magic) {
    Fail("magic mismatch (not a confcard archive of this type)");
  } else if (version != expected_version) {
    Fail("unsupported archive version " + std::to_string(version));
  }
}

Result<ArchiveReader> ArchiveReader::FromFile(const std::string& path,
                                              uint32_t expected_magic,
                                              uint32_t expected_version) {
  if (fault::Enabled()) {
    CONFCARD_RETURN_NOT_OK(fault::Check("io.archive", fault::KeyOf(path)));
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  ArchiveReader reader(std::move(bytes), expected_magic, expected_version);
  if (!reader.status().ok()) return reader.status();
  return reader;
}

bool ArchiveReader::Take(void* out, size_t n) {
  if (!status_.ok()) return false;
  // pos_ <= bytes_.size() always holds; compare against the remaining
  // byte count so an adversarial length can't overflow pos_ + n.
  if (n > bytes_.size() - pos_) {
    Fail("truncated archive");
    return false;
  }
  std::memcpy(out, bytes_.data() + pos_, n);
  pos_ += n;
  return true;
}

void ArchiveReader::Fail(const std::string& what) {
  if (status_.ok()) status_ = Status::InvalidArgument(what);
}

uint32_t ArchiveReader::ReadU32() {
  uint32_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

uint64_t ArchiveReader::ReadU64() {
  uint64_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

int32_t ArchiveReader::ReadI32() {
  int32_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

double ArchiveReader::ReadDouble() {
  double v = 0;
  Take(&v, sizeof(v));
  return v;
}

float ArchiveReader::ReadFloat() {
  float v = 0;
  Take(&v, sizeof(v));
  return v;
}

std::string ArchiveReader::ReadString() {
  const uint64_t n = ReadU64();
  if (!status_.ok()) return "";
  if (n > bytes_.size() - pos_) {
    Fail("truncated string");
    return "";
  }
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_),
                static_cast<size_t>(n));
  pos_ += static_cast<size_t>(n);
  return s;
}

std::vector<double> ArchiveReader::ReadDoubleVec() {
  const uint64_t n = ReadU64();
  std::vector<double> v;
  if (!status_.ok()) return v;
  // Divide instead of multiplying: n * sizeof(double) can wrap for a
  // corrupt length, making the bound check pass and resize() throw.
  if (n > (bytes_.size() - pos_) / sizeof(double)) {
    Fail("truncated vector");
    return v;
  }
  v.resize(static_cast<size_t>(n));
  Take(v.data(), v.size() * sizeof(double));
  return v;
}

std::vector<float> ArchiveReader::ReadFloatVec() {
  const uint64_t n = ReadU64();
  std::vector<float> v;
  if (!status_.ok()) return v;
  if (n > (bytes_.size() - pos_) / sizeof(float)) {
    Fail("truncated vector");
    return v;
  }
  v.resize(static_cast<size_t>(n));
  Take(v.data(), v.size() * sizeof(float));
  return v;
}

void ArchiveReader::ReadFloatsInto(float* out, size_t n) {
  const uint64_t stored = ReadU64();
  if (!status_.ok()) return;
  if (stored != n) {
    Fail("float vector length mismatch");
    return;
  }
  if (n > (bytes_.size() - pos_) / sizeof(float)) {
    Fail("truncated vector");
    return;
  }
  Take(out, n * sizeof(float));
}

}  // namespace confcard
