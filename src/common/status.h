// Status and Result<T>: exception-free error handling in the Arrow/RocksDB
// idiom. Library code returns Status (or Result<T>) instead of throwing;
// invariant violations abort through the CONFCARD_CHECK macros in check.h.
#ifndef CONFCARD_COMMON_STATUS_H_
#define CONFCARD_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace confcard {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kIOError,
  kInternal,
};

/// Returns a short human-readable name for `code` ("OK", "Invalid argument"...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail. An OK status carries no
/// allocation; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Error message; empty for OK statuses.
  const std::string& message() const;
  /// "<code name>: <message>" rendering for logs and test failures.
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr <=> OK. Keeps the success path allocation-free.
  std::unique_ptr<State> state_;
};

/// Either a value of type T or an error Status. Analogous to
/// arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return some_t;`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error: `return Status::Invalid(...)`.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    // An OK status carries no value; treat it as a misuse.
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// Precondition: ok().
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::move(std::get<T>(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace confcard

/// Propagates a non-OK Status from the enclosing function.
#define CONFCARD_RETURN_NOT_OK(expr)                 \
  do {                                               \
    ::confcard::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Evaluates a Result<T> expression; on error propagates the Status,
/// otherwise binds the value to `lhs`.
#define CONFCARD_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  CONFCARD_ASSIGN_OR_RETURN_IMPL_(                            \
      CONFCARD_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define CONFCARD_CONCAT_INNER_(a, b) a##b
#define CONFCARD_CONCAT_(a, b) CONFCARD_CONCAT_INNER_(a, b)
#define CONFCARD_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                    \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

#endif  // CONFCARD_COMMON_STATUS_H_
