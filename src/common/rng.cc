#include "common/rng.h"

#include <algorithm>

#include <cmath>

#include "common/check.h"

namespace confcard {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Avoid the (astronomically unlikely) all-zero state, which is a fixed
  // point of xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  CONFCARD_DCHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // = 2^64 mod n
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  CONFCARD_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(Next());
  }
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box-Muller; u1 bounded away from zero so log(u1) is finite.
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  CONFCARD_DCHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CONFCARD_DCHECK(w >= 0.0);
    total += w;
  }
  CONFCARD_DCHECK(total > 0.0);
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  // Floating-point slack: u landed at (or beyond) the total.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  CONFCARD_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(uint64_t k) const {
  CONFCARD_DCHECK(k < n_);
  double lo = k == 0 ? 0.0 : cdf_[k - 1];
  return cdf_[k] - lo;
}

DiscreteDistribution::DiscreteDistribution(const std::vector<double>& weights) {
  CONFCARD_CHECK(!weights.empty());
  cdf_.resize(weights.size());
  double total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    CONFCARD_CHECK(weights[i] >= 0.0);
    total += weights[i];
    cdf_[i] = total;
  }
  CONFCARD_CHECK(total > 0.0);
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

size_t DiscreteDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace confcard
