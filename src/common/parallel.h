// Deterministic thread-pool parallelism for the repo's hot loops (fold
// training, progressive sampling, per-query harness evaluation, GEMM
// row blocks). Design rules that keep N-thread runs bit-identical to
// 1-thread runs:
//   * ParallelFor partitions an index range; callers write results into
//     pre-sized slots by index, so output order never depends on
//     scheduling.
//   * All randomness stays in per-task seeded Rng instances (one per
//     fold / per query / per call); no task reads another task's stream.
//   * The caller thread participates in the loop, so ParallelFor makes
//     progress even when every pool worker is busy (no deadlock under
//     nesting) and `threads == 1` degenerates to a plain serial loop.
//   * A ParallelFor issued from inside another ParallelFor runs inline
//     on the issuing worker: the outer loop already owns the cores, and
//     inlining keeps the task count bounded.
// Dispatch is allocation-free after pool warmup: the loop descriptor
// lives on the issuing thread's stack, helper slots go through a
// preallocated ring in the pool (no per-chunk std::function or
// packaged_task heap traffic), and the body is passed as a plain
// function pointer + context instead of a std::function. The profiled
// +15% allocation scaling tax at 4 threads (docs/PERFORMANCE.md) came
// from exactly that per-dispatch heap state.
// Thread count resolution: CONFCARD_THREADS env var if set, else
// std::thread::hardware_concurrency(); SetThreads() overrides at
// runtime (benches sweep 1/2/4; tests pin both sides of a determinism
// comparison).
#ifndef CONFCARD_COMMON_PARALLEL_H_
#define CONFCARD_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace confcard {

namespace obs {
class Gauge;
}  // namespace obs

namespace internal {

/// One parallel loop in flight. Lives on the issuing thread's STACK for
/// the duration of the ParallelFor call — ParallelFor blocks until
/// `outstanding` helper slots have all finished, so no heap lifetime is
/// needed. Workers claim chunks off `next_chunk`; the first exception
/// lands in `error` under `done_mu`.
struct LoopState {
  std::atomic<size_t> next_chunk{0};
  std::atomic<bool> failed{false};
  size_t n = 0;
  size_t chunk = 0;
  size_t num_chunks = 0;
  void (*body)(void* ctx, size_t begin, size_t end) = nullptr;
  void* ctx = nullptr;

  std::mutex done_mu;
  std::condition_variable done_cv;
  int outstanding = 0;  // helper slots enqueued and not yet finished
  std::exception_ptr error;
};

}  // namespace internal

/// Fixed-size worker pool. The hot path is SubmitLoopHelpers: helper
/// slots for a ParallelFor are plain pointers pushed into a
/// preallocated ring (the per-pool task slab), so steady-state dispatch
/// performs zero heap allocations. Submit(std::function) remains as the
/// cold-path API for standalone tasks and keeps its future/exception
/// semantics. Destruction is graceful: every helper slot and task
/// already queued is executed before the workers join. Publishes
/// scheduling telemetry under the "pool." metric prefix (see
/// docs/OBSERVABILITY.md); those metrics are deliberately excluded from
/// obsdiff gating because they vary with thread count by design.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (floored at 1).
  explicit ThreadPool(int num_threads);
  /// Drains the queue (queued tasks still run), then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn`; the future resolves when it completes and carries
  /// any exception it threw. Must not be called during/after
  /// destruction. Cold path: allocates for the task's shared state.
  std::future<void> Submit(std::function<void()> fn);

  /// Enqueues up to `count` helper slots for `loop` into the
  /// preallocated ring; returns how many were actually enqueued (fewer
  /// when the ring is full — the caller simply drains more chunks
  /// itself). Allocation-free. `loop` must stay alive until all
  /// enqueued slots have finished (ParallelFor guarantees this by
  /// blocking on loop->done_cv).
  int SubmitLoopHelpers(internal::LoopState* loop, int count);

  /// Tasks and helper slots currently queued (not yet started).
  size_t queue_depth() const;

 private:
  void WorkerLoop(int worker_index);
  size_t DepthLocked() const { return ring_size_ + queue_.size(); }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  // FIFO ring of loop helper slots; capacity fixed at construction so
  // steady-state enqueue/dequeue never allocates.
  std::vector<internal::LoopState*> ring_;
  size_t ring_head_ = 0;
  size_t ring_size_ = 0;
  std::deque<std::packaged_task<void()>> queue_;  // cold Submit path
  std::vector<std::thread> workers_;
  obs::Gauge* depth_gauge_ = nullptr;
  double start_micros_ = 0.0;
};

/// std::thread::hardware_concurrency() floored at 1.
int HardwareThreads();

/// One spin-wait pause. Emits the architectural pause/yield hint so a
/// polling loop (the serving micro-batcher's flush-timeout wait, queue
/// backoff) releases pipeline resources to the sibling hyperthread
/// without a syscall. Compiles to a plain no-op where no hint exists.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// The effective thread count: the last SetThreads() value if any, else
/// CONFCARD_THREADS (clamped to [1, 256]), else HardwareThreads().
int CurrentThreads();

/// Runtime override of the thread count (n <= 1 forces serial
/// execution). Not safe to call concurrently with a running
/// ParallelFor; intended for benches and tests that sweep counts.
void SetThreads(int n);

/// True while the calling thread is executing a ParallelFor chunk
/// (worker or participating caller). Nested ParallelFor calls run
/// inline in that case.
bool InParallelWorker();

/// Type-erased core of ParallelFor: `body(ctx, begin, end)` over
/// disjoint chunks covering [0, n). Prefer the template wrapper below,
/// which erases a callable without constructing a std::function.
void ParallelForErased(size_t n, size_t chunk,
                       void (*body)(void* ctx, size_t begin, size_t end),
                       void* ctx);

/// Runs fn(begin, end) over disjoint chunks covering [0, n). `chunk` is
/// the max indices per invocation; 0 picks a default that yields ~8
/// chunks per thread. Serial (one fn(0, n) call on this thread) when n
/// fits one chunk, the effective thread count is 1, or the caller is
/// already inside a ParallelFor. The first exception thrown by any
/// chunk is rethrown on the calling thread after remaining chunks are
/// cancelled. Blocks until every chunk has finished. The callable is
/// borrowed for the duration of the call (no copy, no allocation).
template <typename Body>
void ParallelFor(size_t n, size_t chunk, const Body& fn) {
  ParallelForErased(
      n, chunk,
      [](void* ctx, size_t begin, size_t end) {
        (*static_cast<const Body*>(ctx))(begin, end);
      },
      const_cast<void*>(static_cast<const void*>(&fn)));
}

}  // namespace confcard

#endif  // CONFCARD_COMMON_PARALLEL_H_
