// Deterministic thread-pool parallelism for the repo's hot loops (fold
// training, progressive sampling, per-query harness evaluation, GEMM
// row blocks). Design rules that keep N-thread runs bit-identical to
// 1-thread runs:
//   * ParallelFor partitions an index range; callers write results into
//     pre-sized slots by index, so output order never depends on
//     scheduling.
//   * All randomness stays in per-task seeded Rng instances (one per
//     fold / per query / per call); no task reads another task's stream.
//   * The caller thread participates in the loop, so ParallelFor makes
//     progress even when every pool worker is busy (no deadlock under
//     nesting) and `threads == 1` degenerates to a plain serial loop.
//   * A ParallelFor issued from inside another ParallelFor runs inline
//     on the issuing worker: the outer loop already owns the cores, and
//     inlining keeps the task count bounded.
// Thread count resolution: CONFCARD_THREADS env var if set, else
// std::thread::hardware_concurrency(); SetThreads() overrides at
// runtime (benches sweep 1/2/4; tests pin both sides of a determinism
// comparison).
#ifndef CONFCARD_COMMON_PARALLEL_H_
#define CONFCARD_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace confcard {

/// Fixed-size worker pool with a FIFO work queue. Destruction is
/// graceful: every task already queued is executed before the workers
/// join. Publishes scheduling telemetry under the "pool." metric prefix
/// (see docs/OBSERVABILITY.md); those metrics are deliberately excluded
/// from obsdiff gating because they vary with thread count by design.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (floored at 1).
  explicit ThreadPool(int num_threads);
  /// Drains the queue (queued tasks still run), then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn`; the future resolves when it completes and carries
  /// any exception it threw. Must not be called during/after
  /// destruction.
  std::future<void> Submit(std::function<void()> fn);

  /// Tasks currently queued (not yet started).
  size_t queue_depth() const;

 private:
  void WorkerLoop(int worker_index);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  double start_micros_ = 0.0;
};

/// std::thread::hardware_concurrency() floored at 1.
int HardwareThreads();

/// The effective thread count: the last SetThreads() value if any, else
/// CONFCARD_THREADS (clamped to [1, 256]), else HardwareThreads().
int CurrentThreads();

/// Runtime override of the thread count (n <= 1 forces serial
/// execution). Not safe to call concurrently with a running
/// ParallelFor; intended for benches and tests that sweep counts.
void SetThreads(int n);

/// True while the calling thread is executing a ParallelFor chunk
/// (worker or participating caller). Nested ParallelFor calls run
/// inline in that case.
bool InParallelWorker();

/// Runs fn(begin, end) over disjoint chunks covering [0, n). `chunk` is
/// the max indices per invocation; 0 picks a default that yields ~8
/// chunks per thread. Serial (one fn(0, n) call on this thread) when n
/// fits one chunk, the effective thread count is 1, or the caller is
/// already inside a ParallelFor. The first exception thrown by any
/// chunk is rethrown on the calling thread after remaining chunks are
/// cancelled. Blocks until every chunk has finished.
void ParallelFor(size_t n, size_t chunk,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace confcard

#endif  // CONFCARD_COMMON_PARALLEL_H_
