#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace confcard {

size_t ConformalRank(size_t n, double alpha) {
  double raw = std::ceil((static_cast<double>(n) + 1.0) * (1.0 - alpha));
  if (raw < 1.0) return 1;
  return static_cast<size_t>(raw);
}

double ConformalQuantile(std::vector<double> values, double alpha) {
  CONFCARD_CHECK(alpha > 0.0 && alpha < 1.0);
  const size_t n = values.size();
  if (n == 0) return std::numeric_limits<double>::infinity();
  size_t rank = ConformalRank(n, alpha);
  if (rank > n) return std::numeric_limits<double>::infinity();
  std::nth_element(values.begin(), values.begin() + (rank - 1), values.end());
  return values[rank - 1];
}

double ConformalQuantileLower(std::vector<double> values, double alpha) {
  CONFCARD_CHECK(alpha > 0.0 && alpha < 1.0);
  const size_t n = values.size();
  if (n == 0) return -std::numeric_limits<double>::infinity();
  double raw = std::floor(alpha * (static_cast<double>(n) + 1.0));
  if (raw < 1.0) return -std::numeric_limits<double>::infinity();
  size_t rank = static_cast<size_t>(raw);
  if (rank > n) rank = n;
  std::nth_element(values.begin(), values.begin() + (rank - 1), values.end());
  return values[rank - 1];
}

double Percentile(std::vector<double> values, double p) {
  CONFCARD_CHECK(p >= 0.0 && p <= 100.0);
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double pos = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(pos));
  size_t hi = static_cast<size_t>(std::ceil(pos));
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) {
    s.min = 0.0;
    s.max = 0.0;
    return s;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(sq / static_cast<double>(values.size() - 1))
                 : 0.0;
  s.median = Percentile(values, 50.0);
  s.p90 = Percentile(values, 90.0);
  s.p95 = Percentile(values, 95.0);
  s.p99 = Percentile(values, 99.0);
  return s;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double m = Mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - m) * (v - m);
  return sq / static_cast<double>(values.size() - 1);
}

}  // namespace confcard
