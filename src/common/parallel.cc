#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace confcard {
namespace {

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Set while a thread is executing ParallelFor chunks; nested loops see
// it and run inline instead of re-entering the pool.
thread_local bool t_in_parallel_worker = false;

struct InWorkerScope {
  InWorkerScope() : prev(t_in_parallel_worker) { t_in_parallel_worker = true; }
  ~InWorkerScope() { t_in_parallel_worker = prev; }
  bool prev;
};

// 0 = not yet resolved from the environment.
std::atomic<int> g_threads{0};

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

int ResolveThreadsFromEnv() {
  if (const char* env = std::getenv("CONFCARD_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) {
      return static_cast<int>(std::min<long>(v, 256));
    }
  }
  return HardwareThreads();
}

// Returns a pool with at least `helpers` workers, creating or growing
// the process-wide pool on demand. Never shrinks: a larger pool is
// harmless because ParallelFor only submits as many helper slots as it
// wants.
ThreadPool* PoolWithCapacity(int helpers) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool || g_pool->num_threads() < helpers) {
    g_pool.reset();  // join the old workers before spawning the new set
    g_pool = std::make_unique<ThreadPool>(helpers);
  }
  return g_pool.get();
}

// Claims chunks until the range (or an error) exhausts them. Runs on
// the caller and on every helper; determinism does not depend on which
// thread claims which chunk because callers write results by index.
void DrainLoop(internal::LoopState* state) {
  // One relaxed load when the profiler is off; arms this thread's
  // sampling timer on its first chunk otherwise. Covers pool workers
  // and the participating caller alike, including workers spawned
  // before the profiler started.
  obs::prof::RegisterCurrentThread();
  InWorkerScope scope;
  for (;;) {
    if (state->failed.load(std::memory_order_relaxed)) return;
    const size_t c = state->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= state->num_chunks) return;
    const size_t begin = c * state->chunk;
    const size_t end = std::min(state->n, begin + state->chunk);
    try {
      state->body(state->ctx, begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->done_mu);
      if (!state->error) state->error = std::current_exception();
      state->failed.store(true, std::memory_order_relaxed);
      return;
    }
  }
}

// Helper-slot execution: drain chunks, then retire the slot. The loop
// state may be destroyed by the waiting caller the moment it observes
// outstanding == 0, so the decrement-and-notify happens under done_mu
// and nothing touches `state` after the lock is released.
void RunLoopHelper(internal::LoopState* state) {
  DrainLoop(state);
  std::lock_guard<std::mutex> lock(state->done_mu);
  if (--state->outstanding == 0) state->done_cv.notify_one();
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  start_micros_ = NowMicros();
  obs::Metrics().GetGauge("pool.threads").Set(static_cast<double>(n));
  depth_gauge_ = &obs::Metrics().GetGauge("pool.queue_depth");
  // The slab: helper slots per loop are bounded by the thread count, so
  // this capacity only fills when many top-level loops are in flight at
  // once — and a full ring degrades gracefully (the caller runs the
  // chunks itself), it never blocks or allocates.
  ring_.assign(std::max<size_t>(256, static_cast<size_t>(n) * 8), nullptr);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Lifetime busy fraction: total task time over total worker
  // wall-time. Telemetry only — excluded from obsdiff gating.
  const double wall = NowMicros() - start_micros_;
  const double denom = wall * static_cast<double>(workers_.size());
  if (denom > 0) {
    const double busy = static_cast<double>(
        obs::Metrics().GetCounter("pool.busy_us").value());
    obs::Metrics()
        .GetGauge("pool.worker_busy_fraction")
        .Set(std::min(1.0, busy / denom));
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    CONFCARD_CHECK_MSG(!stop_, "ThreadPool::Submit after shutdown began");
    queue_.push_back(std::move(task));
    // Published under the lock: submits and pops serialize on mu_, so
    // the gauge can never go backwards relative to the queue's true
    // depth (the old publish-after-release pattern could).
    depth_gauge_->Set(static_cast<double>(DepthLocked()));
  }
  cv_.notify_one();
  return fut;
}

int ThreadPool::SubmitLoopHelpers(internal::LoopState* loop, int count) {
  int enqueued = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    CONFCARD_CHECK_MSG(!stop_,
                       "ThreadPool::SubmitLoopHelpers after shutdown began");
    const size_t cap = ring_.size();
    while (enqueued < count && ring_size_ < cap) {
      ring_[(ring_head_ + ring_size_) % cap] = loop;
      ++ring_size_;
      ++enqueued;
    }
    depth_gauge_->Set(static_cast<double>(DepthLocked()));
  }
  if (enqueued == 1) {
    cv_.notify_one();
  } else if (enqueued > 1) {
    cv_.notify_all();
  }
  return enqueued;
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return DepthLocked();
}

void ThreadPool::WorkerLoop(int worker_index) {
  obs::SetTraceThreadLabel("pool-worker-" + std::to_string(worker_index));
  obs::Counter& executed = obs::Metrics().GetCounter("pool.tasks_executed");
  obs::Counter& busy_us = obs::Metrics().GetCounter("pool.busy_us");
  for (;;) {
    internal::LoopState* loop = nullptr;
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock,
               [this] { return stop_ || ring_size_ > 0 || !queue_.empty(); });
      if (ring_size_ > 0) {
        loop = ring_[ring_head_];
        ring_head_ = (ring_head_ + 1) % ring_.size();
        --ring_size_;
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else {
        return;  // stop_ && drained
      }
      depth_gauge_->Set(static_cast<double>(DepthLocked()));
    }
    const double t0 = NowMicros();
    if (loop != nullptr) {
      RunLoopHelper(loop);
    } else {
      task();  // exceptions land in the task's future
    }
    busy_us.Increment(static_cast<uint64_t>(NowMicros() - t0));
    executed.Increment();
  }
}

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int CurrentThreads() {
  int v = g_threads.load(std::memory_order_relaxed);
  if (v == 0) {
    v = ResolveThreadsFromEnv();
    int expected = 0;
    if (!g_threads.compare_exchange_strong(expected, v,
                                           std::memory_order_relaxed)) {
      v = expected;
    }
  }
  return v;
}

void SetThreads(int n) {
  g_threads.store(std::max(1, std::min(n, 256)), std::memory_order_relaxed);
}

bool InParallelWorker() { return t_in_parallel_worker; }

void ParallelForErased(size_t n, size_t chunk,
                       void (*body)(void* ctx, size_t begin, size_t end),
                       void* ctx) {
  if (n == 0) return;
  const int threads = CurrentThreads();
  if (chunk == 0) {
    chunk = std::max<size_t>(
        1, n / (static_cast<size_t>(std::max(threads, 1)) * 8));
  }
  const size_t num_chunks = (n + chunk - 1) / chunk;
  if (threads <= 1 || num_chunks <= 1 || t_in_parallel_worker) {
    InWorkerScope scope;
    body(ctx, 0, n);
    return;
  }

  // Function-local static: one registry lookup ever, so the steady-state
  // dispatch path performs no allocation and no map probe.
  static obs::Counter& parallel_for_calls =
      obs::Metrics().GetCounter("pool.parallel_for_calls");
  parallel_for_calls.Increment();

  internal::LoopState state;
  state.n = n;
  state.chunk = chunk;
  state.num_chunks = num_chunks;
  state.body = body;
  state.ctx = ctx;

  const int helpers = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(threads - 1), num_chunks - 1));
  ThreadPool* pool = PoolWithCapacity(helpers);
  // `outstanding` is written before SubmitLoopHelpers publishes the
  // state pointer (the pool mutex orders the two), so helpers always see
  // the full count.
  state.outstanding = helpers;
  const int enqueued = pool->SubmitLoopHelpers(&state, helpers);
  if (enqueued < helpers) {
    std::lock_guard<std::mutex> lock(state.done_mu);
    state.outstanding -= helpers - enqueued;
  }
  DrainLoop(&state);  // the caller participates
  {
    std::unique_lock<std::mutex> lock(state.done_mu);
    state.done_cv.wait(lock, [&state] { return state.outstanding == 0; });
  }
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace confcard
