#include "common/status.h"

namespace confcard {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }
  return *this;
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return ok() ? kEmpty : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->message;
  return out;
}

}  // namespace confcard
