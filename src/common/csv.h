// Minimal CSV reading/writing used for loading external datasets and for
// dumping experiment series that can be plotted offline.
#ifndef CONFCARD_COMMON_CSV_H_
#define CONFCARD_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace confcard {

/// Splits one CSV line on `delim`. Supports double-quoted fields with
/// embedded delimiters and doubled quotes; does not support embedded
/// newlines (our datasets have none).
std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delim = ',');

/// Reads a whole CSV file. If `has_header` the first row is returned in
/// `header` (may be nullptr to discard).
Result<std::vector<std::vector<std::string>>> ReadCsv(
    const std::string& path, bool has_header = true,
    std::vector<std::string>* header = nullptr, char delim = ',');

/// Writes rows to `path`, quoting fields containing the delimiter.
Status WriteCsv(const std::string& path,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows,
                char delim = ',');

}  // namespace confcard

#endif  // CONFCARD_COMMON_CSV_H_
